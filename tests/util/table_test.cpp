#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ccvc::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace ccvc::util
