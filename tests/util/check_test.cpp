// Contract-macro semantics.  The load-bearing assertion is the DCHECK
// one: the asan-ubsan preset builds Debug (no NDEBUG), so running this
// suite under that preset proves the hot-path contracts in the
// transform loops are compiled in and enforced there — the default
// RelWithDebInfo build defines NDEBUG and compiles them away.
#include "util/check.hpp"

#include <gtest/gtest.h>

namespace ccvc {
namespace {

TEST(Check, CheckThrowsInEveryBuildType) {
  EXPECT_THROW(CCVC_CHECK(false), ContractViolation);
  EXPECT_NO_THROW(CCVC_CHECK(true));
}

TEST(Check, CheckMsgCarriesTheMessage) {
  try {
    CCVC_CHECK_MSG(false, "the reason");
    FAIL() << "CCVC_CHECK_MSG(false, ...) did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the reason"), std::string::npos);
  }
}

TEST(Check, DcheckMatchesBuildType) {
#ifdef NDEBUG
  // Release: DCHECK must compile away entirely.
  EXPECT_NO_THROW(CCVC_DCHECK(false));
#else
  // Debug (and the asan-ubsan preset): DCHECK is a full CHECK.
  EXPECT_THROW(CCVC_DCHECK(false), ContractViolation);
#endif
}

TEST(Check, DcheckDoesNotEvaluateInRelease) {
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return true;
  };
  (void)touch;  // NDEBUG expansion references nothing
  CCVC_DCHECK(touch());
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

}  // namespace
}  // namespace ccvc
