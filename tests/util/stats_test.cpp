#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ccvc::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  const Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(v);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
  EXPECT_EQ(a.min(), 3.5);
  EXPECT_EQ(a.max(), 3.5);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  a.add(-5.0);
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
}

TEST(Histogram, ExactPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1), 1.0);
}

TEST(Histogram, PercentileAfterMoreAdds) {
  Histogram h;
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
  h.add(1.0);  // re-sorting must happen after mutation
  EXPECT_DOUBLE_EQ(h.percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  const Histogram h;
  EXPECT_EQ(h.percentile(99), 0.0);
}

TEST(Histogram, BadPercentileThrows) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW(h.percentile(-1), ContractViolation);
  EXPECT_THROW(h.percentile(101), ContractViolation);
}

TEST(Histogram, BriefMentionsCount) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  const std::string s = h.brief();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace ccvc::util
