// Compiled with -DCCVC_NO_METRICS (see tests/CMakeLists.txt) while the
// rest of the binary is not: proves the macro no-op variants compile,
// "use" their arguments (no -Werror=unused fallout), and leave the
// registry untouched.  metrics_test.cpp calls the probe and asserts
// nothing under "test.nometrics." was registered.
#include "util/metrics.hpp"
#include "util/trace.hpp"

#if !defined(CCVC_NO_METRICS)
#error "this TU must be compiled with CCVC_NO_METRICS"
#endif

namespace ccvc::util {

void metrics_nometrics_probe() {
  const int depth = 3;
  CCVC_METRIC_COUNT("test.nometrics.counter", 1);
  CCVC_METRIC_GAUGE_SET("test.nometrics.gauge", depth);
  CCVC_METRIC_HIST("test.nometrics.hist", depth);
  CCVC_TRACE(trace::EventType::kChannelSend, 0.0, 0, 0, 0);
}

}  // namespace ccvc::util
