// Metrics registry semantics (src/util/metrics.hpp): counter/gauge/
// histogram behaviour, the bit_width bucket layout, deterministic
// snapshots, name validation, and the CCVC_NO_METRICS compile-out
// (exercised by the sibling TU metrics_nometrics_tu.cpp, which is
// compiled with the definition while this TU is not).
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace ccvc::util {

/// Defined in metrics_nometrics_tu.cpp (built with -DCCVC_NO_METRICS):
/// invokes every CCVC_METRIC_* macro under names with the
/// "test.nometrics." prefix, which must never reach the registry.
void metrics_nometrics_probe();

namespace {

class MetricsTest : public ::testing::Test {
 protected:
  // The registry is process-global; instruments persist across tests
  // (by design — call sites hold references).  Zero them so each test
  // sees clean values.
  void SetUp() override { metrics::reset(); }
};

TEST_F(MetricsTest, CounterAccumulates) {
  metrics::Counter& c = metrics::counter("test.metrics.counter");
  EXPECT_EQ(c.value, 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value, 42u);
  // Lookup by the same name returns the same instrument.
  EXPECT_EQ(&metrics::counter("test.metrics.counter"), &c);
}

TEST_F(MetricsTest, GaugeTracksWatermark) {
  metrics::Gauge& g = metrics::gauge("test.metrics.gauge");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value, 3);
  EXPECT_EQ(g.watermark, 7);
  g.add(10);
  EXPECT_EQ(g.value, 13);
  EXPECT_EQ(g.watermark, 13);
  g.set(-2);
  EXPECT_EQ(g.value, -2);
  EXPECT_EQ(g.watermark, 13);
}

TEST_F(MetricsTest, HistogramBucketsByBitWidth) {
  metrics::Histogram& h = metrics::histogram("test.metrics.hist");
  h.record(0);   // bit_width 0 -> bucket 0
  h.record(1);   // bit_width 1 -> bucket 1
  h.record(2);   // bit_width 2 -> bucket 2
  h.record(3);   // bit_width 2 -> bucket 2
  h.record(4);   // bit_width 3 -> bucket 3
  h.record(std::numeric_limits<std::uint64_t>::max());  // bucket 64

  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.buckets()[64], 1u);

  // Bucket i holds values in [2^(i-1), 2^i): its exclusive limit is 2^i.
  EXPECT_EQ(metrics::Histogram::bucket_limit(0), 1u);
  EXPECT_EQ(metrics::Histogram::bucket_limit(3), 8u);
  EXPECT_EQ(metrics::Histogram::bucket_limit(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST_F(MetricsTest, HistogramSumAndEmptyMin) {
  metrics::Histogram& h = metrics::histogram("test.metrics.hist_sum");
  EXPECT_EQ(h.min(), 0u);  // empty histogram reads as all-zero
  EXPECT_EQ(h.sum(), 0u);
  h.record(10);
  h.record(5);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 10u);
}

TEST_F(MetricsTest, MalformedNamesAreRejected) {
  EXPECT_THROW(metrics::counter(""), ContractViolation);
  EXPECT_THROW(metrics::counter("Bad.Name"), ContractViolation);
  EXPECT_THROW(metrics::gauge("has space"), ContractViolation);
  EXPECT_THROW(metrics::histogram("dash-ed"), ContractViolation);
  EXPECT_NO_THROW(metrics::counter("ok.name_2"));
}

TEST_F(MetricsTest, SnapshotTextIsSortedAndDeterministic) {
  // Register out of name order; snapshots must sort regardless.
  metrics::counter("test.snap.zz").inc(2);
  metrics::counter("test.snap.aa").inc(1);
  metrics::gauge("test.snap.mid").set(5);
  metrics::histogram("test.snap.h").record(3);

  const std::string a = metrics::snapshot_text();
  const std::string b = metrics::snapshot_text();
  EXPECT_EQ(a, b);  // pure function of registry state
  EXPECT_LT(a.find("test.snap.aa"), a.find("test.snap.zz"));
  EXPECT_NE(a.find("counter test.snap.aa 1\n"), std::string::npos);
  EXPECT_NE(a.find("gauge test.snap.mid 5 watermark 5\n"), std::string::npos);
  EXPECT_NE(a.find("hist test.snap.h count 1 sum 3 min 3 max 3 b2:1\n"),
            std::string::npos);
}

TEST_F(MetricsTest, SnapshotJsonShape) {
  metrics::counter("test.json.c").inc(7);
  metrics::gauge("test.json.g").set(-3);
  metrics::histogram("test.json.h").record(1);
  const std::string j = metrics::snapshot_json();
  EXPECT_NE(j.find("\"test.json.c\":7"), std::string::npos);
  EXPECT_NE(j.find("\"test.json.g\":{\"value\":-3,\"watermark\":0}"),
            std::string::npos);
  EXPECT_NE(j.find("\"test.json.h\":{\"count\":1,\"sum\":1,\"min\":1,"
                   "\"max\":1,\"buckets\":{\"1\":1}}"),
            std::string::npos);
}

TEST_F(MetricsTest, ResetZeroesButKeepsRegistrations) {
  metrics::Counter& c = metrics::counter("test.reset.c");
  c.inc(9);
  const std::size_t n = metrics::instrument_count();
  metrics::reset();
  EXPECT_EQ(c.value, 0u);                       // same instrument, zeroed
  EXPECT_EQ(metrics::instrument_count(), n);    // registration survives
  EXPECT_EQ(&metrics::counter("test.reset.c"), &c);
}

TEST_F(MetricsTest, MacrosResolveOnceAndBump) {
  const std::size_t before = metrics::instrument_count();
  for (int i = 0; i < 3; ++i) {
    CCVC_METRIC_COUNT("test.macro.counter", 2);
    CCVC_METRIC_GAUGE_SET("test.macro.gauge", i);
    CCVC_METRIC_HIST("test.macro.hist", i);
  }
  EXPECT_EQ(metrics::counter("test.macro.counter").value, 6u);
  EXPECT_EQ(metrics::gauge("test.macro.gauge").value, 2);
  EXPECT_EQ(metrics::histogram("test.macro.hist").count(), 3u);
  EXPECT_EQ(metrics::instrument_count(), before + 3);
}

TEST_F(MetricsTest, NoMetricsTuRegistersNothing) {
  const std::size_t before = metrics::instrument_count();
  metrics_nometrics_probe();
  EXPECT_EQ(metrics::instrument_count(), before);
  // Nothing with the probe's prefix ever reached the registry.
  EXPECT_EQ(metrics::snapshot_text().find("test.nometrics."),
            std::string::npos);
}

TEST_F(MetricsTest, ToUsConversion) {
  EXPECT_EQ(metrics::to_us(0.0), 0u);
  EXPECT_EQ(metrics::to_us(-5.0), 0u);
  EXPECT_EQ(metrics::to_us(1.5), 1500u);
}

}  // namespace
}  // namespace ccvc::util
