#include "util/varint.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ccvc::util {
namespace {

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : cases) {
    ByteSink sink;
    sink.put_uvarint(v);
    EXPECT_EQ(sink.size(), uvarint_size(v)) << v;
    ByteSource src(sink.bytes());
    EXPECT_EQ(src.get_uvarint(), v);
    EXPECT_TRUE(src.exhausted());
  }
}

TEST(Varint, SizeTable) {
  EXPECT_EQ(uvarint_size(0), 1u);
  EXPECT_EQ(uvarint_size(127), 1u);
  EXPECT_EQ(uvarint_size(128), 2u);
  EXPECT_EQ(uvarint_size(16383), 2u);
  EXPECT_EQ(uvarint_size(16384), 3u);
  EXPECT_EQ(uvarint_size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(Varint, SignedZigZag) {
  const std::int64_t cases[] = {0, -1, 1, -64, 63, -65,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (const auto v : cases) {
    ByteSink sink;
    sink.put_svarint(v);
    ByteSource src(sink.bytes());
    EXPECT_EQ(src.get_svarint(), v);
  }
}

TEST(Varint, SmallNegativesAreSmall) {
  ByteSink sink;
  sink.put_svarint(-1);
  EXPECT_EQ(sink.size(), 1u);
}

TEST(Varint, StringRoundTrip) {
  ByteSink sink;
  sink.put_string("hello");
  sink.put_string("");
  sink.put_string(std::string(200, 'x'));
  ByteSource src(sink.bytes());
  EXPECT_EQ(src.get_string(), "hello");
  EXPECT_EQ(src.get_string(), "");
  EXPECT_EQ(src.get_string(), std::string(200, 'x'));
  EXPECT_TRUE(src.exhausted());
}

TEST(Varint, UnderflowThrows) {
  ByteSink sink;
  sink.put_u8(0x80);  // continuation with no terminator
  ByteSource src(sink.bytes());
  EXPECT_THROW(src.get_uvarint(), DecodeError);
}

TEST(Varint, OverlongVarintThrows) {
  ByteSink sink;
  for (int i = 0; i < 11; ++i) sink.put_u8(0x80);
  ByteSource src(sink.bytes());
  EXPECT_THROW(src.get_uvarint(), DecodeError);
}

TEST(Varint, StringLengthBeyondBufferThrows) {
  ByteSink sink;
  sink.put_uvarint(100);  // claims 100 bytes, provides none
  ByteSource src(sink.bytes());
  EXPECT_THROW(src.get_string(), DecodeError);
}

TEST(Varint, EmptySourceThrows) {
  const std::vector<std::uint8_t> empty;
  ByteSource src(empty);
  EXPECT_THROW(src.get_u8(), DecodeError);
}

TEST(Varint, TenthByteOverflowBitsThrow) {
  // Nine continuation bytes put the tenth at shift 63, where only one
  // bit of payload fits.  A tenth byte with higher bits set used to be
  // silently truncated — two distinct wire encodings decoded to the
  // same value.  It must be rejected instead.
  ByteSink sink;
  for (int i = 0; i < 9; ++i) sink.put_u8(0xFF);
  sink.put_u8(0x7F);  // bits 1..6 would shift past bit 63
  ByteSource src(sink.bytes());
  EXPECT_THROW(src.get_uvarint(), DecodeError);
}

TEST(Varint, TenthByteCanonicalMaxDecodes) {
  // The canonical 10-byte encoding of UINT64_MAX (tenth byte 0x01)
  // stays valid.
  ByteSink sink;
  for (int i = 0; i < 9; ++i) sink.put_u8(0xFF);
  sink.put_u8(0x01);
  ByteSource src(sink.bytes());
  EXPECT_EQ(src.get_uvarint(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(src.exhausted());
}

TEST(Varint, Uvarint32RangeChecked) {
  // Regression for the silent uint64 -> uint32 narrowing that used to
  // hide behind static_cast at the SiteId decode sites: exactly
  // UINT32_MAX decodes, one past it throws instead of wrapping to 0.
  ByteSink ok;
  ok.put_uvarint(0xffffffffull);
  ByteSource ok_src(ok.bytes());
  EXPECT_EQ(ok_src.get_uvarint32(), 0xffffffffu);

  ByteSink over;
  over.put_uvarint(0x100000000ull);
  ByteSource over_src(over.bytes());
  EXPECT_THROW(over_src.get_uvarint32(), DecodeError);
}

TEST(Varint, MixedSequence) {
  ByteSink sink;
  sink.put_u8(0xAB);
  sink.put_uvarint(300);
  sink.put_string("ab");
  sink.put_svarint(-300);
  ByteSource src(sink.bytes());
  EXPECT_EQ(src.get_u8(), 0xAB);
  EXPECT_EQ(src.get_uvarint(), 300u);
  EXPECT_EQ(src.get_string(), "ab");
  EXPECT_EQ(src.get_svarint(), -300);
  EXPECT_TRUE(src.exhausted());
}

}  // namespace
}  // namespace ccvc::util
