// Dynamic membership (extension): the paper's demonstrator "allows an
// arbitrary number of users to participate a collaborative editing
// session" — and the compressed scheme is what makes that trivial,
// because no client's clock mentions N.  Late joiners are seeded with a
// notifier snapshot whose operation count becomes their initial SV_i[1].
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/workload.hpp"

namespace ccvc::engine {
namespace {

StarSessionConfig base_cfg(std::size_t n) {
  StarSessionConfig cfg;
  cfg.num_sites = n;
  cfg.initial_doc = "membership";
  cfg.uplink = net::LatencyModel::fixed(10.0);
  cfg.downlink = net::LatencyModel::fixed(10.0);
  return cfg;
}

TEST(Membership, JoinReceivesSnapshotAndParticipates) {
  StarSession s(base_cfg(2));
  s.client(1).insert(0, "aa");
  s.client(2).insert(0, "bb");
  s.run_to_quiescence();
  ASSERT_TRUE(s.converged());

  const SiteId joiner = s.add_client();
  EXPECT_EQ(joiner, 3u);
  EXPECT_EQ(s.num_sites(), 3u);
  // Snapshot carried the current document and counts as 2 received ops.
  EXPECT_EQ(s.client(3).text(), s.notifier().text());
  EXPECT_EQ(s.client(3).state_vector().from_center, 2u);

  // The joiner edits; everyone converges.
  s.client(3).insert(0, "cc");
  s.client(1).insert(0, "dd");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_NE(s.notifier().text().find("cc"), std::string::npos);
}

TEST(Membership, JoinWhileMessagesInFlight) {
  StarSession s(base_cfg(2));
  s.client(1).insert(0, "xxxx");
  // Join before the op reaches the notifier: the snapshot does NOT
  // contain it, and the joiner must receive it like everyone else.
  const SiteId joiner = s.add_client();
  EXPECT_EQ(s.client(joiner).state_vector().from_center, 0u);
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.client(joiner).text(), s.notifier().text());
  EXPECT_EQ(s.client(joiner).state_vector().from_center, 1u);
}

TEST(Membership, JoinersVerdictsAreSound) {
  sim::ObserverMux mux;
  // Oracle sized for the maximum membership the test reaches (5).
  sim::CausalityOracle oracle(5);
  mux.add(&oracle);
  StarSession s(base_cfg(3), &mux);

  sim::WorkloadConfig w;
  w.ops_per_site = 10;
  w.mean_think_ms = 15.0;
  w.seed = 31;
  sim::StarWorkload workload(s, w);
  workload.start();
  s.queue().run_until(120.0);  // mid-session...

  const SiteId j1 = s.add_client();
  const SiteId j2 = s.add_client();
  s.client(j1).insert(0, "J1");
  s.client(j2).insert(0, "J2");
  s.run_to_quiescence();

  EXPECT_TRUE(s.converged());
  EXPECT_EQ(oracle.verdict_mismatches(), 0u);
  EXPECT_GT(oracle.verdicts_checked(), 0u);
}

TEST(Membership, LeaveFreezesReplicaAndOthersContinue) {
  StarSession s(base_cfg(3));
  s.client(1).insert(0, "start ");
  s.run_to_quiescence();

  s.remove_client(2);
  EXPECT_TRUE(s.is_active(2));  // the notice is still on the wire
  s.run_to_quiescence();
  EXPECT_FALSE(s.is_active(2));
  const std::string frozen = s.client(2).text();

  s.client(1).insert(0, "after ");
  s.client(3).insert(0, "more ");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());               // active replicas agree
  EXPECT_EQ(s.client(2).text(), frozen);    // departed replica froze
  EXPECT_NE(s.client(1).text(), frozen);
}

TEST(Membership, InFlightOpsFromDepartedSiteStillApply) {
  StarSession s(base_cfg(2));
  s.client(2).insert(0, "last words");
  s.remove_client(2);  // leaves before the op reaches the notifier
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "last wordsmembership");
  EXPECT_EQ(s.client(1).text(), "last wordsmembership");
}

TEST(Membership, GcResumesAfterSilentSiteLeaves) {
  auto cfg = base_cfg(3);
  cfg.engine.gc_history = true;
  StarSession s(cfg);
  // Site 3 is silent and never acknowledges, pinning the notifier's HB.
  for (int i = 0; i < 10; ++i) {
    s.client(1).insert(0, "a");
    s.run_to_quiescence();
    s.client(2).insert(0, "b");
    s.run_to_quiescence();
  }
  EXPECT_EQ(s.notifier().hb_collected(), 0u);

  s.remove_client(3);  // its acks no longer gate collection
  s.client(1).insert(0, "c");
  s.run_to_quiescence();
  EXPECT_GT(s.notifier().hb_collected(), 15u);
  EXPECT_TRUE(s.converged());
}

TEST(Membership, JoinRequiresCompressedMode) {
  auto cfg = base_cfg(2);
  cfg.engine.stamp_mode = StampMode::kFullVector;
  StarSession s(cfg);
  EXPECT_THROW(s.add_client(), ContractViolation);
}

TEST(Membership, RepeatedJoinsScaleSession) {
  StarSession s(base_cfg(1));
  s.client(1).insert(0, "seed");
  s.run_to_quiescence();
  for (int k = 0; k < 6; ++k) {
    const SiteId j = s.add_client();
    s.client(j).insert(0, std::string(1, static_cast<char>('A' + k)));
    s.run_to_quiescence();
    ASSERT_TRUE(s.converged()) << "after join " << k;
  }
  EXPECT_EQ(s.num_sites(), 7u);
  // All six joiners' characters made it into every replica.
  for (char c = 'A'; c <= 'F'; ++c) {
    EXPECT_NE(s.notifier().text().find(c), std::string::npos) << c;
  }
}

}  // namespace
}  // namespace ccvc::engine
