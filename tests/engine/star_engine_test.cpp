// Behavioural unit tests of the star engine: local responsiveness,
// pending-list/acknowledgement mechanics, eq.(1) invariants, and small
// scripted convergence cases beyond the paper's figures.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "util/check.hpp"

namespace ccvc::engine {
namespace {

StarSessionConfig small_cfg(std::size_t n, std::string doc) {
  StarSessionConfig cfg;
  cfg.num_sites = n;
  cfg.initial_doc = std::move(doc);
  cfg.uplink = net::LatencyModel::fixed(10.0);
  cfg.downlink = net::LatencyModel::fixed(10.0);
  return cfg;
}

TEST(StarEngine, LocalEditIsImmediate) {
  StarSession s(small_cfg(2, "abc"));
  s.client(1).insert(1, "XY");
  // §2.1: executed locally before any network round trip.
  EXPECT_EQ(s.client(1).text(), "aXYbc");
  EXPECT_EQ(s.client(2).text(), "abc");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.client(2).text(), "aXYbc");
}

TEST(StarEngine, OpIdsCountPerSite) {
  StarSession s(small_cfg(2, ""));
  EXPECT_EQ(s.client(1).insert(0, "a"), (OpId{1, 1}));
  EXPECT_EQ(s.client(1).insert(0, "b"), (OpId{1, 2}));
  EXPECT_EQ(s.client(2).insert(0, "c"), (OpId{2, 1}));
}

TEST(StarEngine, NotifierExecutesEverything) {
  StarSession s(small_cfg(3, ""));
  s.client(1).insert(0, "a");
  s.client(2).insert(0, "b");
  s.client(3).insert(0, "c");
  s.run_to_quiescence();
  EXPECT_EQ(s.notifier().history().size(), 3u);
  EXPECT_EQ(s.notifier().text().size(), 3u);
  EXPECT_TRUE(s.converged());
}

TEST(StarEngine, PendingShrinksOnAcknowledgement) {
  StarSession s(small_cfg(2, ""));
  s.client(1).insert(0, "a");
  s.client(1).insert(1, "b");
  EXPECT_EQ(s.client(1).pending_count(), 2u);
  // After the round trip via client 2's first op, the notifier's next
  // message to client 1 carries SV_0[1] as the acknowledgement.
  s.run_to_quiescence();
  EXPECT_EQ(s.client(1).pending_count(), 2u);  // nothing came back yet
  s.client(2).insert(0, "z");
  s.run_to_quiescence();
  EXPECT_EQ(s.client(1).pending_count(), 0u);  // z's stamp acked a and b
  EXPECT_TRUE(s.converged());
}

TEST(StarEngine, BridgeQueueDrainsOnAck) {
  StarSession s(small_cfg(2, ""));
  s.client(2).insert(0, "x");
  s.run_to_quiescence();
  // The notifier enqueued O'x for client 1 and it is unacknowledged.
  EXPECT_EQ(s.notifier().outgoing_count(1), 1u);
  // A client-1 op stamped after executing O'x acknowledges it.
  s.client(1).insert(0, "y");
  s.run_to_quiescence();
  EXPECT_EQ(s.notifier().outgoing_count(1), 0u);
}

TEST(StarEngine, CrossingOperationsConverge) {
  // Two clients edit the same position simultaneously; messages cross in
  // flight.
  StarSession s(small_cfg(2, "HELLO"));
  s.client(1).insert(2, "aa");
  s.client(2).insert(2, "bb");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  // Site-1 priority puts "aa" left of "bb".
  EXPECT_EQ(s.notifier().text(), "HEaabbLLO");
}

TEST(StarEngine, ConcurrentDeleteOfSameRangeConverges) {
  StarSession s(small_cfg(2, "ABCDEF"));
  s.client(1).erase(1, 3);
  s.client(2).erase(2, 3);
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  // Union [1,5) deleted exactly once.
  EXPECT_EQ(s.notifier().text(), "AF");
}

TEST(StarEngine, InsertIntoConcurrentlyDeletedRegionSurvives) {
  StarSession s(small_cfg(2, "ABCDEF"));
  s.client(1).erase(1, 4);     // deletes BCDE
  s.client(2).insert(3, "!");  // between C and D
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "A!F");
}

TEST(StarEngine, RapidFireFromOneSiteIsFifo) {
  StarSession s(small_cfg(2, ""));
  for (int i = 0; i < 10; ++i) {
    s.client(1).insert(static_cast<std::size_t>(i),
                       std::string(1, static_cast<char>('a' + i)));
  }
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "abcdefghij");
}

TEST(StarEngine, ThreeWayConcurrentBurstConverges) {
  StarSession s(small_cfg(3, "0123456789"));
  s.client(1).insert(5, "one");
  s.client(2).erase(3, 4);
  s.client(3).insert(7, "three");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  // "one" and "three" both survive the overlapping delete.
  const std::string doc = s.notifier().text();
  EXPECT_NE(doc.find("one"), std::string::npos);
  EXPECT_NE(doc.find("three"), std::string::npos);
}

TEST(StarEngine, ClientIdZeroRejected) {
  EXPECT_THROW(
      ClientSite(0, 2, "", EngineConfig{}, [](net::Payload) {}),
      ContractViolation);
  EXPECT_THROW(
      ClientSite(3, 2, "", EngineConfig{}, [](net::Payload) {}),
      ContractViolation);
}

TEST(StarEngine, GenerateOutOfBoundsThrows) {
  StarSession s(small_cfg(1, "ab"));
  EXPECT_THROW(s.client(1).insert(5, "x"), ContractViolation);
  EXPECT_THROW(s.client(1).erase(1, 5), ContractViolation);
}

TEST(StarEngine, WireMessagesFlowThroughNetwork) {
  sim::ObserverMux mux;
  StarSessionConfig cfg = small_cfg(2, "");
  StarSession s(cfg, &mux);
  s.client(1).insert(0, "hello");
  s.run_to_quiescence();
  // 1 uplink + 1 downlink (to client 2 only).
  EXPECT_EQ(s.network().total_messages(), 2u);
  EXPECT_GT(s.network().total_bytes(), 0u);
  EXPECT_EQ(s.network().channel(1, 0).stats().messages, 1u);
  EXPECT_EQ(s.network().channel(0, 2).stats().messages, 1u);
  EXPECT_EQ(s.network().channel(0, 1).stats().messages, 0u);  // no echo
}

TEST(StarEngine, SingleClientSessionTrivium) {
  StarSession s(small_cfg(1, ""));
  s.client(1).insert(0, "solo");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "solo");
  EXPECT_EQ(s.network().channel(1, 0).stats().messages, 1u);
}

}  // namespace
}  // namespace ccvc::engine
