// Exact replay of the paper's §5 walkthrough (Fig. 3): every state
// vector, every propagation timestamp, every buffered timestamp, and all
// 21 concurrency verdicts, transliterated from the paper's text.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/scenario.hpp"

namespace ccvc::sim {
namespace {

using clocks::CompressedSv;
using clocks::HbSource;
using engine::EventKey;

class Fig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    mux.add(&recorder);
    mux.add(&oracle);
    session = std::make_unique<engine::StarSession>(fig_scenario_config(),
                                                    &mux);
    ids = schedule_fig_scenario(*session);
    session->run_to_quiescence();

    o1 = EventKey{ids.o1, false};
    o2 = EventKey{ids.o2, false};
    o3 = EventKey{ids.o3, false};
    o4 = EventKey{ids.o4, false};
    o1p = EventKey{ids.o1, true};
    o2p = EventKey{ids.o2, true};
    o3p = EventKey{ids.o3, true};
    o4p = EventKey{ids.o4, true};
  }

  ObserverMux mux;
  VerdictRecorder recorder;
  CausalityOracle oracle{3};
  std::unique_ptr<engine::StarSession> session;
  Fig3Ids ids;
  EventKey o1, o2, o3, o4, o1p, o2p, o3p, o4p;
};

TEST_F(Fig3Test, FinalStateVectors) {
  // Site 0 ends at SV_0 = [1,2,1] (paper: after buffering O'3).
  EXPECT_EQ(session->notifier().state_vector().full().str(), "[0,1,2,1]");
  // Site 1: received O'2, O'4, O'3; generated O1.
  EXPECT_EQ(session->client(1).state_vector(), (CompressedSv{3, 1}));
  // Site 2: received O'1, O'4; generated O2, O3.
  EXPECT_EQ(session->client(2).state_vector(), (CompressedSv{2, 2}));
  // Site 3: received O'2, O'1, O'3; generated O4.
  EXPECT_EQ(session->client(3).state_vector(), (CompressedSv{3, 1}));
}

TEST_F(Fig3Test, NotifierHistoryBufferTimestamps) {
  // §5: HB_0 = [O'2, O'1, O'4, O'3] timestamped [0,1,0], [1,1,0],
  // [1,1,1], [1,2,1] (site-indexed; our slot 0 is unused).
  const auto& hb = session->notifier().history();
  ASSERT_EQ(hb.size(), 4u);
  EXPECT_EQ(hb[0].id, ids.o2);
  EXPECT_EQ(hb[0].stamp.str(), "[0,0,1,0]");
  EXPECT_EQ(hb[1].id, ids.o1);
  EXPECT_EQ(hb[1].stamp.str(), "[0,1,1,0]");
  EXPECT_EQ(hb[2].id, ids.o4);
  EXPECT_EQ(hb[2].stamp.str(), "[0,1,1,1]");
  EXPECT_EQ(hb[3].id, ids.o3);
  EXPECT_EQ(hb[3].stamp.str(), "[0,1,2,1]");
  // Origins recorded correctly.
  EXPECT_EQ(hb[0].origin, 2u);
  EXPECT_EQ(hb[1].origin, 1u);
  EXPECT_EQ(hb[2].origin, 3u);
  EXPECT_EQ(hb[3].origin, 2u);
}

TEST_F(Fig3Test, ClientHistoryBufferOrderAndTimestamps) {
  // Site 1: HB = [O1, O'2, O'4, O'3]; center stamps [1,0], [2,1], [3,1].
  {
    const auto& hb = session->client(1).history();
    ASSERT_EQ(hb.size(), 4u);
    EXPECT_EQ(hb[0].id, ids.o1);
    EXPECT_EQ(hb[0].source, HbSource::kLocal);
    EXPECT_EQ(hb[0].stamp, (CompressedSv{0, 1}));  // §5: T_O1 = [0,1]
    EXPECT_EQ(hb[1].id, ids.o2);
    EXPECT_EQ(hb[1].source, HbSource::kFromCenter);
    EXPECT_EQ(hb[1].stamp, (CompressedSv{1, 0}));  // §5: O'2 to site 1
    EXPECT_EQ(hb[2].id, ids.o4);
    EXPECT_EQ(hb[2].stamp, (CompressedSv{2, 1}));  // §5: O'4 to site 1
    EXPECT_EQ(hb[3].id, ids.o3);
    EXPECT_EQ(hb[3].stamp, (CompressedSv{3, 1}));  // §5: O'3 to site 1
  }
  // Site 2: HB = [O2, O'1, O3, O'4].
  {
    const auto& hb = session->client(2).history();
    ASSERT_EQ(hb.size(), 4u);
    EXPECT_EQ(hb[0].id, ids.o2);
    EXPECT_EQ(hb[0].stamp, (CompressedSv{0, 1}));  // §5: T_O2 = [0,1]
    EXPECT_EQ(hb[1].id, ids.o1);
    EXPECT_EQ(hb[1].stamp, (CompressedSv{1, 1}));  // §5: O'1 to site 2
    EXPECT_EQ(hb[2].id, ids.o3);
    EXPECT_EQ(hb[2].source, HbSource::kLocal);
    EXPECT_EQ(hb[2].stamp, (CompressedSv{1, 2}));  // §5: T_O3 = [1,2]
    EXPECT_EQ(hb[3].id, ids.o4);
    EXPECT_EQ(hb[3].stamp, (CompressedSv{2, 1}));  // §5: O'4 to site 2
  }
  // Site 3: HB = [O'2, O4, O'1, O'3].
  {
    const auto& hb = session->client(3).history();
    ASSERT_EQ(hb.size(), 4u);
    EXPECT_EQ(hb[0].id, ids.o2);
    EXPECT_EQ(hb[0].stamp, (CompressedSv{1, 0}));  // §5: O'2 to site 3
    EXPECT_EQ(hb[1].id, ids.o4);
    EXPECT_EQ(hb[1].source, HbSource::kLocal);
    EXPECT_EQ(hb[1].stamp, (CompressedSv{1, 1}));  // §5: T_O4 = [1,1]
    EXPECT_EQ(hb[2].id, ids.o1);
    EXPECT_EQ(hb[2].stamp, (CompressedSv{2, 0}));  // §5: O'1 to site 3
    EXPECT_EQ(hb[3].id, ids.o3);
    EXPECT_EQ(hb[3].stamp, (CompressedSv{3, 1}));  // §5: O'3 to site 3
  }
}

TEST_F(Fig3Test, AllTwentyOneVerdictsMatchSection5) {
  // Handling O2: site 1 checks O'2 against O1 -> concurrent.
  EXPECT_TRUE(recorder.verdict_of(1, o2p, o1));

  // Handling O1: site 0 checks O1 against O'2 -> concurrent.
  EXPECT_TRUE(recorder.verdict_of(0, o1, o2p));
  // Site 2 checks O'1 against O2 -> not concurrent.
  EXPECT_FALSE(recorder.verdict_of(2, o1p, o2));
  // Site 3 checks O'1 against O'2 (not) and O4 (concurrent).
  EXPECT_FALSE(recorder.verdict_of(3, o1p, o2p));
  EXPECT_TRUE(recorder.verdict_of(3, o1p, o4));

  // Handling O4: site 0 checks against O'2 (not) and O'1 (concurrent).
  EXPECT_FALSE(recorder.verdict_of(0, o4, o2p));
  EXPECT_TRUE(recorder.verdict_of(0, o4, o1p));
  // Site 1 checks O'4 against O1 and O'2 -> neither concurrent.
  EXPECT_FALSE(recorder.verdict_of(1, o4p, o1));
  EXPECT_FALSE(recorder.verdict_of(1, o4p, o2p));
  // Site 2 checks O'4 against O2, O'1 (not) and O3 (concurrent).
  EXPECT_FALSE(recorder.verdict_of(2, o4p, o2));
  EXPECT_FALSE(recorder.verdict_of(2, o4p, o1p));
  EXPECT_TRUE(recorder.verdict_of(2, o4p, o3));

  // Handling O3: site 0 checks against O'2, O'1 (not) and O'4
  // (concurrent).
  EXPECT_FALSE(recorder.verdict_of(0, o3, o2p));
  EXPECT_FALSE(recorder.verdict_of(0, o3, o1p));
  EXPECT_TRUE(recorder.verdict_of(0, o3, o4p));
  // Site 1 checks O'3 against O1, O'2, O'4 -> none concurrent.
  EXPECT_FALSE(recorder.verdict_of(1, o3p, o1));
  EXPECT_FALSE(recorder.verdict_of(1, o3p, o2p));
  EXPECT_FALSE(recorder.verdict_of(1, o3p, o4p));
  // Site 3 checks O'3 against O'2, O4, O'1 -> none concurrent.
  EXPECT_FALSE(recorder.verdict_of(3, o3p, o2p));
  EXPECT_FALSE(recorder.verdict_of(3, o3p, o4));
  EXPECT_FALSE(recorder.verdict_of(3, o3p, o1p));

  EXPECT_EQ(recorder.verdicts().size(), 21u);
}

TEST_F(Fig3Test, OracleConfirmsEveryVerdict) {
  EXPECT_EQ(oracle.verdicts_checked(), 21u);
  EXPECT_EQ(oracle.verdict_mismatches(), 0u);
  EXPECT_EQ(oracle.concurrent_verdicts(), 6u);
}

TEST_F(Fig3Test, ConvergesIntentionPreserved) {
  EXPECT_TRUE(session->converged());
  // Derived by hand in the §5 schedule: O1's "12" lands left of O4's "y"
  // (site-1 priority), O2's "CDE" is gone, O3's "x" stays after "B".
  EXPECT_EQ(session->notifier().text(), "A12yBx");
  // The §2.2 subset: "12" present, "CDE" absent everywhere.
  for (const auto& doc : session->documents()) {
    EXPECT_NE(doc.find("12"), std::string::npos);
    EXPECT_EQ(doc.find("C"), std::string::npos);
    EXPECT_EQ(doc.find("D"), std::string::npos);
    EXPECT_EQ(doc.find("E"), std::string::npos);
  }
}

TEST_F(Fig3Test, NotifierCapturedIntentions) {
  // The executed form of O2 at the notifier deleted exactly "CDE".
  const auto& hb = session->notifier().history();
  std::string deleted;
  for (const auto& p : hb[0].executed) deleted += p.text;
  EXPECT_EQ(deleted, "CDE");
}

TEST_F(Fig3Test, TransformedFormsDifferFromOriginals) {
  // §5's central observation: O'4 as issued is "an operation different
  // from O_4" — site 3 generated Insert["y", 1] but the notifier issued
  // it transformed against the concurrent O'1 as Insert["y", 3].
  const auto& hb = session->notifier().history();
  ASSERT_EQ(hb[2].id, ids.o4);
  ASSERT_EQ(hb[2].executed.size(), 1u);
  EXPECT_EQ(hb[2].executed[0].text, "y");
  EXPECT_EQ(hb[2].executed[0].pos, 3u);
}

}  // namespace
}  // namespace ccvc::sim
