// History-buffer garbage collection (extension; the paper leaves HBs
// unbounded, its deployed REDUCE system collected them).  GC must be
// invisible to the protocol: identical documents, identical concurrent
// verdicts, zero oracle mismatches — with bounded buffers.
#include <gtest/gtest.h>

#include <set>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

namespace ccvc::sim {
namespace {

engine::StarSessionConfig gc_cfg(std::size_t n, std::uint64_t seed,
                                 bool gc) {
  engine::StarSessionConfig cfg;
  cfg.num_sites = n;
  cfg.initial_doc = "garbage collected history buffers";
  cfg.engine.gc_history = gc;
  cfg.uplink = net::LatencyModel::lognormal(40.0, 0.5, 10.0);
  cfg.downlink = net::LatencyModel::lognormal(40.0, 0.5, 10.0);
  cfg.seed = seed;
  return cfg;
}

WorkloadConfig gc_workload(std::uint64_t seed) {
  WorkloadConfig w;
  w.ops_per_site = 40;
  w.mean_think_ms = 25.0;
  w.hotspot_prob = 0.4;
  w.seed = seed;
  return w;
}

TEST(HistoryGc, SessionStaysCorrect) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const StarRunReport r = run_star(gc_cfg(5, seed, true),
                                     gc_workload(seed + 100));
    EXPECT_TRUE(r.converged) << seed;
    EXPECT_EQ(r.verdict_mismatches, 0u) << seed;
  }
}

TEST(HistoryGc, SameFinalDocumentAsUncollected) {
  for (const std::uint64_t seed : {7u, 8u}) {
    const StarRunReport with_gc =
        run_star(gc_cfg(4, seed, true), gc_workload(seed));
    const StarRunReport without =
        run_star(gc_cfg(4, seed, false), gc_workload(seed));
    EXPECT_EQ(with_gc.final_doc, without.final_doc) << seed;
    EXPECT_TRUE(with_gc.converged);
  }
}

TEST(HistoryGc, ConcurrentVerdictsAreIdentical) {
  // GC drops only entries no future check can flag concurrent, so the
  // set of concurrent pairs detected must be exactly the same; only
  // redundant "dependent" verdicts disappear.
  auto collect = [](bool gc) {
    ObserverMux mux;
    VerdictRecorder rec;
    mux.add(&rec);
    engine::StarSession session(gc_cfg(4, 55, gc), &mux);
    StarWorkload workload(session, gc_workload(56));
    workload.start();
    session.run_to_quiescence();
    EXPECT_TRUE(session.converged());
    std::multiset<std::tuple<SiteId, engine::EventKey, engine::EventKey>>
        concurrent;
    std::size_t total = 0;
    for (const auto& v : rec.verdicts()) {
      ++total;
      if (v.concurrent) concurrent.insert({v.at_site, v.incoming, v.buffered});
    }
    return std::make_pair(concurrent, total);
  };
  const auto [gc_conc, gc_total] = collect(true);
  const auto [raw_conc, raw_total] = collect(false);
  EXPECT_EQ(gc_conc, raw_conc);
  EXPECT_FALSE(gc_conc.empty());
  EXPECT_LT(gc_total, raw_total);  // GC really pruned dependent checks
}

TEST(HistoryGc, BuffersStayBounded) {
  engine::StarSessionConfig cfg = gc_cfg(4, 77, true);
  cfg.uplink = net::LatencyModel::fixed(10.0);
  cfg.downlink = net::LatencyModel::fixed(10.0);
  engine::StarSession session(cfg);
  WorkloadConfig w = gc_workload(78);
  w.ops_per_site = 200;
  w.mean_think_ms = 30.0;
  StarWorkload workload(session, w);
  workload.start();
  session.run_to_quiescence();

  EXPECT_TRUE(session.converged());
  // 800 operations flowed; live buffers must be tiny at quiescence.
  EXPECT_GT(session.notifier().hb_collected(), 700u);
  EXPECT_LT(session.notifier().history().size(), 50u);
  for (SiteId i = 1; i <= 4; ++i) {
    EXPECT_LT(session.client(i).history().size(), 20u) << "site " << i;
    EXPECT_GT(session.client(i).hb_collected(), 150u) << "site " << i;
  }
}

TEST(HistoryGc, Fig3WithGcStillReplaysCorrectly) {
  engine::EngineConfig eng;
  eng.gc_history = true;
  engine::StarSession session(fig_scenario_config(eng));
  schedule_fig_scenario(session);
  session.run_to_quiescence();
  EXPECT_TRUE(session.converged());
  EXPECT_EQ(session.notifier().text(), "A12yBx");
}

TEST(HistoryGc, IdleSiteKeepsEntriesAlive) {
  // A silent site can still submit a concurrent op later, so entries it
  // has not acknowledged must survive GC at the notifier.
  engine::StarSessionConfig cfg = gc_cfg(3, 99, true);
  cfg.uplink = net::LatencyModel::fixed(5.0);
  cfg.downlink = net::LatencyModel::fixed(5.0);
  engine::StarSession session(cfg);
  // Sites 1 and 2 chat; site 3 never sends -> never acknowledges.
  for (int i = 0; i < 10; ++i) {
    session.client(1).insert(0, "a");
    session.run_to_quiescence();
    session.client(2).insert(0, "b");
    session.run_to_quiescence();
  }
  // All 20 entries are still potentially concurrent with a future op
  // from site 3 (its T[1] could be as low as its current ack, 0 at the
  // notifier until it speaks).
  EXPECT_EQ(session.notifier().history().size(), 20u);
  EXPECT_EQ(session.notifier().hb_collected(), 0u);

  // Once site 3 speaks (acknowledging everything), the backlog dies.
  session.client(3).insert(0, "c");
  session.run_to_quiescence();
  EXPECT_TRUE(session.converged());
  EXPECT_GT(session.notifier().hb_collected(), 0u);
  EXPECT_LT(session.notifier().history().size(), 21u);
}

}  // namespace
}  // namespace ccvc::sim
