// Atomic replace (select-and-type): a compound delete+insert operation
// exercising multi-primitive op lists through the whole pipeline.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"

namespace ccvc::engine {
namespace {

StarSessionConfig rep_cfg(std::size_t n, std::string doc) {
  StarSessionConfig cfg;
  cfg.num_sites = n;
  cfg.initial_doc = std::move(doc);
  cfg.uplink = net::LatencyModel::fixed(10.0);
  cfg.downlink = net::LatencyModel::fixed(10.0);
  return cfg;
}

TEST(Replace, BasicAtomicReplace) {
  StarSession s(rep_cfg(2, "hello world"));
  s.client(1).replace(6, 5, "there");
  EXPECT_EQ(s.client(1).text(), "hello there");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.client(2).text(), "hello there");
}

TEST(Replace, IsOneOperation) {
  StarSession s(rep_cfg(2, "abcdef"));
  const OpId id = s.client(1).replace(1, 3, "XY");
  EXPECT_EQ(id, (OpId{1, 1}));  // a single generation
  s.run_to_quiescence();
  EXPECT_EQ(s.network().channel(1, 0).stats().messages, 1u);
  EXPECT_EQ(s.notifier().history().size(), 1u);
}

TEST(Replace, ConcurrentReplacesOfDisjointRegionsConverge) {
  StarSession s(rep_cfg(2, "one two three"));
  s.client(1).replace(0, 3, "ONE");
  s.client(2).replace(8, 5, "THREE");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "ONE two THREE");
}

TEST(Replace, ConcurrentOverlappingReplacesConverge) {
  StarSession s(rep_cfg(2, "0123456789"));
  s.client(1).replace(2, 4, "AA");  // kills 2345
  s.client(2).replace(4, 4, "BB");  // kills 4567
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  const std::string doc = s.notifier().text();
  // Both replacement texts survive; the union 2..7 is gone exactly once.
  EXPECT_NE(doc.find("AA"), std::string::npos);
  EXPECT_NE(doc.find("BB"), std::string::npos);
  EXPECT_EQ(doc.find('3'), std::string::npos);
  EXPECT_EQ(doc.find('6'), std::string::npos);
  EXPECT_NE(doc.find("01"), std::string::npos);
  EXPECT_NE(doc.find("89"), std::string::npos);
}

TEST(Replace, UndoRestoresOriginalText) {
  StarSession s(rep_cfg(2, "the quick fox"));
  const OpId id = s.client(1).replace(4, 5, "slow");
  s.run_to_quiescence();
  ASSERT_EQ(s.notifier().text(), "the slow fox");
  s.client(1).undo(id);
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "the quick fox");
}

TEST(Replace, VerdictsStaySoundWithCompoundOps) {
  sim::ObserverMux mux;
  sim::CausalityOracle oracle(3);
  mux.add(&oracle);
  StarSession s(rep_cfg(3, "shared buffer contents"), &mux);
  s.client(1).replace(0, 6, "SHARED");
  s.client(2).replace(7, 6, "BUFFER");
  s.client(3).insert(0, "// ");
  s.run_to_quiescence();
  s.client(2).replace(0, 3, "##-");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(oracle.verdict_mismatches(), 0u);
}

}  // namespace
}  // namespace ccvc::engine
