// Checkpoint/restore: byte round-trips must be lossless, and a restored
// site must behave bit-identically to the original on the same
// subsequent inputs (crash-recovery for the notifier process).
#include <gtest/gtest.h>

#include <vector>

#include "engine/session.hpp"
#include "engine/snapshot.hpp"
#include "sim/workload.hpp"
#include "util/varint.hpp"

namespace ccvc::engine {
namespace {

StarSessionConfig mid_cfg() {
  StarSessionConfig cfg;
  cfg.num_sites = 3;
  cfg.initial_doc = "checkpointed collaborative document";
  cfg.uplink = net::LatencyModel::lognormal(30.0, 0.5, 10.0);
  cfg.downlink = net::LatencyModel::lognormal(30.0, 0.5, 10.0);
  cfg.seed = 99;
  return cfg;
}

/// A session driven part-way through a workload (the workload object
/// must outlive the session's queued events).
struct PartialRun {
  std::unique_ptr<StarSession> session;
  std::unique_ptr<sim::StarWorkload> workload;
};

PartialRun run_partial(double until, const sim::WorkloadConfig& wcfg) {
  PartialRun run;
  run.session = std::make_unique<StarSession>(mid_cfg());
  run.workload = std::make_unique<sim::StarWorkload>(*run.session, wcfg);
  run.workload->start();
  run.session->queue().run_until(until);
  return run;
}

TEST(Snapshot, ClientRoundTripIsLossless) {
  sim::WorkloadConfig w;
  w.ops_per_site = 20;
  w.mean_think_ms = 20.0;
  w.seed = 5;
  const PartialRun run = run_partial(150.0, w);

  for (SiteId i = 1; i <= 3; ++i) {
    const net::Payload bytes = save_checkpoint(run.session->client(i));
    const ClientSite::State state = load_client_checkpoint(bytes);
    EXPECT_EQ(state, run.session->client(i).state()) << "site " << i;
  }
}

TEST(Snapshot, NotifierRoundTripIsLossless) {
  sim::WorkloadConfig w;
  w.ops_per_site = 20;
  w.mean_think_ms = 20.0;
  w.seed = 6;
  const PartialRun run = run_partial(150.0, w);

  const net::Payload bytes = save_checkpoint(run.session->notifier());
  const NotifierSite::State state = load_notifier_checkpoint(bytes);
  EXPECT_EQ(state, run.session->notifier().state());
}

TEST(Snapshot, RestoredNotifierContinuesIdentically) {
  // Capture the uplink byte stream of a full session, split it, and
  // feed the tail to (a) a notifier that saw the head live and (b) a
  // notifier restored from (a)'s mid-point checkpoint.  Outputs and end
  // state must match exactly.
  std::vector<std::pair<SiteId, net::Payload>> uplink_log;
  {
    auto session = std::make_unique<StarSession>(mid_cfg());
    net::Network& net = session->network();
    for (SiteId i = 1; i <= 3; ++i) {
      net.channel(i, kNotifierSite)
          .set_receiver([&uplink_log, &session, i](const net::Payload& b) {
            uplink_log.emplace_back(i, b);
            session->notifier().on_client_message(i, b);
          });
    }
    sim::WorkloadConfig w;
    w.ops_per_site = 15;
    w.mean_think_ms = 20.0;
    w.seed = 7;
    sim::StarWorkload workload(*session, w);
    workload.start();
    session->run_to_quiescence();
    ASSERT_TRUE(session->converged());
  }
  ASSERT_EQ(uplink_log.size(), 45u);
  const std::size_t split = uplink_log.size() / 2;

  using Sent = std::vector<std::pair<SiteId, net::Payload>>;
  Sent out_live, out_restored;

  EngineConfig ecfg;
  NotifierSite live(3, mid_cfg().initial_doc, ecfg,
                    [&out_live](SiteId d, net::Payload b) {
                      out_live.emplace_back(d, std::move(b));
                    });
  for (std::size_t k = 0; k < split; ++k) {
    live.on_client_message(uplink_log[k].first, uplink_log[k].second);
  }

  // Crash here: restore a fresh process from the checkpoint.
  const net::Payload ckpt = save_checkpoint(live);
  NotifierSite restored(load_notifier_checkpoint(ckpt), ecfg,
                        [&out_restored](SiteId d, net::Payload b) {
                          out_restored.emplace_back(d, std::move(b));
                        });
  out_live.clear();

  for (std::size_t k = split; k < uplink_log.size(); ++k) {
    live.on_client_message(uplink_log[k].first, uplink_log[k].second);
    restored.on_client_message(uplink_log[k].first, uplink_log[k].second);
  }

  EXPECT_EQ(out_live, out_restored);  // byte-identical broadcasts
  EXPECT_EQ(live.text(), restored.text());
  EXPECT_EQ(live.state(), restored.state());
}

TEST(Snapshot, RestoredClientContinuesIdentically) {
  sim::WorkloadConfig w;
  w.ops_per_site = 15;
  w.mean_think_ms = 20.0;
  w.seed = 8;
  const PartialRun run = run_partial(120.0, w);

  std::vector<net::Payload> sent_restored;
  ClientSite restored(load_client_checkpoint(
                          save_checkpoint(run.session->client(2))),
                      EngineConfig{},
                      [&sent_restored](net::Payload b) {
                        sent_restored.push_back(std::move(b));
                      });
  EXPECT_EQ(restored.text(), run.session->client(2).text());

  // Drive both with an identical local edit; the resulting states must
  // match exactly, and the restored site's wire bytes must parse to the
  // same operation.
  const std::size_t pos = restored.document().size() / 2;
  restored.insert(pos, "RESTORED");
  run.session->client(2).insert(pos, "RESTORED");
  EXPECT_EQ(restored.state(), run.session->client(2).state());
  ASSERT_EQ(sent_restored.size(), 1u);
  const ClientMsg msg =
      decode_client_msg(sent_restored[0], StampMode::kCompressed);
  EXPECT_EQ(msg.id.site, 2u);
}

TEST(Snapshot, WholeSessionRestoreContinuesIdentically) {
  // Run half the workload, quiesce, checkpoint the whole session,
  // restore into a fresh one, and drive BOTH with identical further
  // edits: every observable must match.
  sim::WorkloadConfig w;
  w.ops_per_site = 12;
  w.mean_think_ms = 20.0;
  w.seed = 77;
  StarSessionConfig cfg = mid_cfg();
  StarSession original(cfg);
  {
    sim::StarWorkload workload(original, w);
    workload.start();
    original.run_to_quiescence();
  }
  ASSERT_TRUE(original.converged());

  const net::Payload ckpt = original.checkpoint();
  StarSession restored(cfg, ckpt);
  EXPECT_EQ(restored.num_sites(), original.num_sites());
  EXPECT_EQ(restored.notifier().text(), original.notifier().text());

  auto drive = [](StarSession& s) {
    s.client(1).insert(0, "AFTER ");
    s.client(2).erase(s.client(2).document().size() / 2, 2);
    s.client(3).replace(1, 2, "##");
    s.run_to_quiescence();
  };
  drive(original);
  drive(restored);

  EXPECT_TRUE(original.converged());
  EXPECT_TRUE(restored.converged());
  EXPECT_EQ(original.documents(), restored.documents());
  // Protocol state agrees where it is serialization-independent.  (The
  // restored session's network re-seeds its latency RNGs, so arrival
  // order — and with it HB order — may differ; full byte-identity under
  // identical inputs is covered by RestoredNotifierContinuesIdentically,
  // which replays the exact message sequence.)
  EXPECT_EQ(original.notifier().state_vector().full(),
            restored.notifier().state_vector().full());
  for (SiteId i = 1; i <= 3; ++i) {
    EXPECT_EQ(original.client(i).state_vector(),
              restored.client(i).state_vector());
  }
}

TEST(Snapshot, SessionCheckpointRequiresQuiescence) {
  StarSession s(mid_cfg());
  s.client(1).insert(0, "in flight");
  EXPECT_THROW((void)s.checkpoint(), ContractViolation);
  s.run_to_quiescence();
  EXPECT_NO_THROW((void)s.checkpoint());
}

TEST(Snapshot, SessionRestorePreservesMembership) {
  StarSessionConfig cfg = mid_cfg();
  StarSession s(cfg);
  s.client(1).insert(0, "x");
  s.run_to_quiescence();
  const SiteId joiner = s.add_client();
  s.remove_client(2);
  s.client(joiner).insert(0, "j");
  s.run_to_quiescence();

  StarSession r(cfg, s.checkpoint());
  EXPECT_EQ(r.num_sites(), 4u);
  EXPECT_FALSE(r.is_active(2));
  EXPECT_TRUE(r.is_active(joiner));
  r.client(joiner).insert(0, "again");
  r.run_to_quiescence();
  EXPECT_TRUE(r.converged());
}

TEST(Snapshot, CorruptCheckpointRejected) {
  StarSessionConfig cfg = mid_cfg();
  StarSession session(cfg);
  net::Payload bytes = save_checkpoint(session.notifier());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(load_notifier_checkpoint(bytes), util::DecodeError);
  net::Payload truncated(bytes.begin(), bytes.begin() + 5);
  truncated[0] ^= 0xFF;  // restore the tag
  EXPECT_ANY_THROW(load_notifier_checkpoint(truncated));
}

}  // namespace
}  // namespace ccvc::engine
