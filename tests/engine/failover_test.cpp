// Hot-standby notifier failover: continuous replication of the durable
// checkpoint + WAL to a standby machine, fail-stop of the primary, and
// promotion of the standby — validated for convergence, oracle-clean
// causality verdicts, and the promotion preconditions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace ccvc::sim {
namespace {

engine::StarSessionConfig standby_cfg(std::uint64_t seed) {
  engine::StarSessionConfig cfg;
  cfg.num_sites = 4;
  cfg.initial_doc = "failover must not lose a single keystroke";
  cfg.uplink = net::LatencyModel::uniform(10.0, 120.0);
  cfg.downlink = net::LatencyModel::uniform(10.0, 120.0);
  cfg.reliability.enabled = true;
  cfg.standby = true;
  cfg.seed = seed;
  return cfg;
}

WorkloadConfig standby_workload(std::uint64_t seed) {
  WorkloadConfig w;
  w.ops_per_site = 25;
  w.mean_think_ms = 20.0;
  w.hotspot_prob = 0.4;
  w.seed = seed;
  return w;
}

TEST(HotStandby, ReplicatesDurableStateContinuously) {
  engine::StarSession session(standby_cfg(1));
  StarWorkload workload(session, standby_workload(10));
  workload.start();
  session.run_to_quiescence();
  // At quiescence the standby's replica mirrors the primary's durable
  // store: one replicated WAL entry per logged uplink delivery.
  EXPECT_GT(session.wal_size(), 0u);
  EXPECT_EQ(session.standby_wal_size(), session.wal_size());
  // A durable checkpoint truncates both the primary's WAL and (via the
  // 0xE0 replica frame) the standby's.
  session.checkpoint_notifier();
  session.run_to_quiescence();
  EXPECT_EQ(session.wal_size(), 0u);
  EXPECT_EQ(session.standby_wal_size(), 0u);
}

TEST(HotStandby, FailoverPreservesConvergenceAndCausality) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    ObserverMux mux;
    CausalityOracle oracle(4, true);
    mux.add(&oracle);
    engine::StarSession session(standby_cfg(seed), &mux);
    StarWorkload workload(session, standby_workload(seed + 9));
    workload.start();

    // Fail the primary with traffic genuinely in transit.
    session.queue().run_until(200.0);
    EXPECT_GT(session.queue().pending(), 0u) << seed;
    session.fail_primary();
    EXPECT_TRUE(session.primary_failed());
    session.queue().run_until(200.0 + session.standby_promote_delay_ms());
    session.promote_standby();
    session.run_to_quiescence();

    EXPECT_TRUE(session.converged()) << seed;
    EXPECT_EQ(oracle.verdict_mismatches(), 0u) << seed;
    EXPECT_EQ(session.failover_promotions(), 1u);
    EXPECT_FALSE(session.primary_failed());
    // The fail-stop voided real in-flight traffic (connection reset)
    // and retransmission repaid it.
    EXPECT_GT(session.network().total_fault_stats().dropped_reset, 0u);
    EXPECT_GT(session.link_stats().retransmits, 0u) << seed;
  }
}

TEST(HotStandby, SurvivesRepeatedFailover) {
  // Promotion re-seeds a fresh standby (checkpoint_notifier at the end
  // of promote_standby), so a second fail-stop later in the run must
  // recover just as cleanly.
  ObserverMux mux;
  CausalityOracle oracle(4, true);
  mux.add(&oracle);
  engine::StarSession session(standby_cfg(5), &mux);
  StarWorkload workload(session, standby_workload(50));
  workload.start();

  for (const double t : {150.0, 500.0}) {
    session.queue().run_until(t);
    session.fail_primary();
    session.queue().run_until(t + session.standby_promote_delay_ms());
    session.promote_standby();
  }
  session.run_to_quiescence();

  EXPECT_TRUE(session.converged());
  EXPECT_EQ(oracle.verdict_mismatches(), 0u);
  EXPECT_EQ(session.failover_promotions(), 2u);
}

TEST(HotStandby, PromotionPreconditionsAreChecked) {
  engine::StarSession session(standby_cfg(7));
  // Promote without a failure: rejected.
  EXPECT_THROW(session.promote_standby(), ccvc::ContractViolation);
  // Fail-stop without a standby configured: rejected.
  engine::StarSessionConfig no_standby = standby_cfg(8);
  no_standby.standby = false;
  engine::StarSession plain(no_standby);
  EXPECT_THROW(plain.fail_primary(), ccvc::ContractViolation);
  // Double fail-stop: rejected.
  session.run_to_quiescence();
  session.fail_primary();
  EXPECT_THROW(session.fail_primary(), ccvc::ContractViolation);
}

TEST(HotStandby, ClientsStallDuringOutageAndDrainAfterPromotion) {
  engine::StarSession session(standby_cfg(9));
  session.run_to_quiescence();
  const double t0 = session.queue().now();
  session.fail_primary();
  // Edits typed during the outage queue in the client-side links (their
  // retransmissions die on the downed channels) and survive promotion.
  session.client(1).insert(0, "during-outage ");
  session.client(2).insert(0, "also-queued ");
  session.queue().run_until(t0 + session.standby_promote_delay_ms());
  session.promote_standby();
  session.run_to_quiescence();
  EXPECT_TRUE(session.converged());
  const std::string doc = session.documents().front();
  EXPECT_NE(doc.find("during-outage "), std::string::npos);
  EXPECT_NE(doc.find("also-queued "), std::string::npos);
}

}  // namespace
}  // namespace ccvc::sim
