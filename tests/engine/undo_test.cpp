// Collaborative undo: a compensating operation generated through the
// normal pipeline, so it converges like any edit.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "util/check.hpp"

namespace ccvc::engine {
namespace {

StarSessionConfig undo_cfg(std::size_t n, std::string doc) {
  StarSessionConfig cfg;
  cfg.num_sites = n;
  cfg.initial_doc = std::move(doc);
  cfg.uplink = net::LatencyModel::fixed(10.0);
  cfg.downlink = net::LatencyModel::fixed(10.0);
  return cfg;
}

TEST(Undo, OwnInsertRemovedEverywhere) {
  StarSession s(undo_cfg(2, "hello"));
  const OpId op = s.client(1).insert(2, "XYZ");
  s.run_to_quiescence();
  ASSERT_EQ(s.client(2).text(), "heXYZllo");

  s.client(1).undo(op);
  EXPECT_EQ(s.client(1).text(), "hello");  // immediate locally
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "hello");
}

TEST(Undo, OwnDeleteRestoresText) {
  StarSession s(undo_cfg(2, "collaborate"));
  const OpId op = s.client(1).erase(2, 5);
  ASSERT_EQ(s.client(1).text(), "corate");
  s.run_to_quiescence();

  s.client(1).undo(op);
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "collaborate");
}

TEST(Undo, SurvivesInterveningRemoteEdits) {
  StarSession s(undo_cfg(2, "abcdef"));
  const OpId op = s.client(1).insert(3, "##");
  s.run_to_quiescence();
  // Site 2 edits around (not inside) the inserted text.
  s.client(2).insert(0, ">>");
  s.client(2).erase(7, 1);  // ">>abc##def" minus 'd' -> ">>abc##ef"
  s.run_to_quiescence();
  ASSERT_TRUE(s.converged());
  ASSERT_EQ(s.notifier().text(), ">>abc##ef");

  s.client(1).undo(op);
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), ">>abcef");
}

TEST(Undo, PartiallyConsumedInsertUndoesWhatRemains) {
  StarSession s(undo_cfg(2, "ab"));
  const OpId op = s.client(1).insert(1, "XXXX");
  s.run_to_quiescence();
  // Site 2 deletes half of the inserted run.
  s.client(2).erase(1, 2);
  s.run_to_quiescence();
  ASSERT_TRUE(s.converged());
  ASSERT_EQ(s.notifier().text(), "aXXb");

  s.client(1).undo(op);
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  EXPECT_EQ(s.notifier().text(), "ab");  // the surviving half goes
}

TEST(Undo, UndoLastPicksMostRecentAndRedoWorks) {
  StarSession s(undo_cfg(1, ""));
  s.client(1).insert(0, "one ");
  s.client(1).insert(4, "two");
  s.client(1).undo_last();  // undo "two"
  EXPECT_EQ(s.client(1).text(), "one ");
  // Compensators are ordinary local operations, so the next undo_last
  // targets the youngest not-yet-undone one — i.e. it is a redo.
  s.client(1).undo_last();
  EXPECT_EQ(s.client(1).text(), "one two");
  // Explicit-target undo reaches past all of that.
  s.client(1).undo(OpId{1, 1});
  EXPECT_EQ(s.client(1).text(), "two");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
}

TEST(Undo, ConcurrentUndoAndEditConverge) {
  StarSession s(undo_cfg(3, "base"));
  const OpId op = s.client(1).insert(4, "!!!");
  s.run_to_quiescence();
  // Concurrently: site 1 undoes, site 2 types inside the region, site 3
  // types at the front.
  s.client(1).undo(op);
  s.client(2).insert(5, "q");
  s.client(3).insert(0, "#");
  s.run_to_quiescence();
  EXPECT_TRUE(s.converged());
  const std::string doc = s.notifier().text();
  EXPECT_NE(doc.find("base"), std::string::npos);
  EXPECT_NE(doc.find('q'), std::string::npos);  // site 2's char survives
  EXPECT_NE(doc.find('#'), std::string::npos);
  EXPECT_EQ(doc.find("!!!"), std::string::npos);  // undone
}

TEST(Undo, ForeignOpRejected) {
  StarSession s(undo_cfg(2, "x"));
  s.client(2).insert(0, "y");
  s.run_to_quiescence();
  EXPECT_THROW(s.client(1).undo(OpId{2, 1}), ContractViolation);
}

TEST(Undo, UnknownOpRejected) {
  StarSession s(undo_cfg(2, "x"));
  EXPECT_THROW(s.client(1).undo(OpId{1, 7}), ContractViolation);
  EXPECT_THROW(s.client(1).undo_last(), ContractViolation);
}

}  // namespace
}  // namespace ccvc::engine
