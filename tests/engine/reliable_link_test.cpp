// ReliableLink protocol unit tests: exactly-once in-order delivery over
// faulty channels, retransmission, dedup, checksum rejection, and state
// checkpoint/restore.
#include "engine/reliable_link.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/event_queue.hpp"
#include "net/fault.hpp"
#include "util/check.hpp"
#include "util/checksum.hpp"
#include "util/rng.hpp"
#include "util/varint.hpp"

namespace ccvc::engine {
namespace {

net::Payload text(const std::string& s) {
  return net::Payload(s.begin(), s.end());
}

std::string str(const net::Payload& p) {
  return std::string(p.begin(), p.end());
}

/// The sublayer under test, switched on (the config default is the
/// passthrough used by sessions without fault tolerance).
ReliabilityConfig on(ReliabilityConfig cfg = {}) {
  cfg.enabled = true;
  return cfg;
}

// --- frame codec -----------------------------------------------------

TEST(FrameCodec, DataRoundTrip) {
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 42;
  f.ack = 17;
  f.payload = text("hello");
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.kind, Frame::Kind::kData);
  EXPECT_EQ(g.seq, 42u);
  EXPECT_EQ(g.ack, 17u);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(FrameCodec, AckRoundTrip) {
  Frame f;
  f.kind = Frame::Kind::kAck;
  f.ack = 99;
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.kind, Frame::Kind::kAck);
  EXPECT_EQ(g.ack, 99u);
  EXPECT_TRUE(g.payload.empty());
}

TEST(FrameCodec, EmptyPayloadRoundTrip) {
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 1;
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.seq, 1u);
  EXPECT_TRUE(g.payload.empty());
}

TEST(FrameCodec, EverySingleBitFlipIsRejected) {
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 1234;
  f.ack = 56;
  f.payload = text("integrity");
  const net::Payload wire = encode_frame(f);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      net::Payload mutated = wire;
      mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(decode_frame(mutated), util::DecodeError)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(FrameCodec, TruncationIsRejected) {
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 7;
  f.ack = 3;
  f.payload = text("abc");
  const net::Payload wire = encode_frame(f);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const net::Payload prefix(wire.begin(),
                              wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_frame(prefix), util::DecodeError) << "len " << len;
  }
}

TEST(FrameCodec, SackRoundTrip) {
  Frame f;
  f.kind = Frame::Kind::kSack;
  f.ack = 4;
  f.sack = {{6, 9}, {12, 12}, {20, 31}};
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.kind, Frame::Kind::kSack);
  EXPECT_EQ(g.ack, 4u);
  EXPECT_EQ(g.sack, f.sack);
  EXPECT_TRUE(g.payload.empty());
}

TEST(FrameCodec, EmptySackEncodesAndRejectsNothing) {
  Frame f;
  f.kind = Frame::Kind::kSack;
  f.ack = 7;
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.ack, 7u);
  EXPECT_TRUE(g.sack.empty());
}

// Hand-crafts a sack frame from raw (gap, len) deltas, with a valid
// CRC, to reach the decoder's canonicality checks.
net::Payload raw_sack(
    std::uint64_t ack,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& gap_len) {
  util::ByteSink sink;
  sink.put_u8(0xF2);
  sink.put_uvarint(ack);
  sink.put_uvarint(gap_len.size());
  for (const auto& [gap, len] : gap_len) {
    sink.put_uvarint(gap);
    sink.put_uvarint(len);
  }
  net::Payload bytes = sink.bytes();
  const std::uint32_t crc = util::crc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  return bytes;
}

TEST(FrameCodec, NonCanonicalSackIsRejected) {
  // gap == 1: the run would be contiguous with the cumulative ack.
  EXPECT_THROW(decode_frame(raw_sack(3, {{1, 2}})), util::DecodeError);
  // gap == 0 after a run: overlapping/unsorted runs.
  EXPECT_THROW(decode_frame(raw_sack(3, {{2, 2}, {0, 1}})),
               util::DecodeError);
  // len == 0: an empty run carries no information.
  EXPECT_THROW(decode_frame(raw_sack(3, {{2, 0}})), util::DecodeError);
  // Overflowing run start.
  EXPECT_THROW(
      decode_frame(raw_sack(0xfffffffffffffffeull, {{5, 1}})),
      util::DecodeError);
  // The same deltas in canonical form decode fine.
  const Frame ok = decode_frame(raw_sack(3, {{2, 2}, {3, 1}}));
  ASSERT_EQ(ok.sack.size(), 2u);
  EXPECT_EQ(ok.sack[0], (std::pair<std::uint64_t, std::uint64_t>{5, 6}));
  EXPECT_EQ(ok.sack[1], (std::pair<std::uint64_t, std::uint64_t>{9, 9}));
}

// --- link pair over a channel ---------------------------------------

/// Two endpoints of one bidirectional conversation over two directed
/// channels (a→b and b→a), as the session wires them.
struct LinkPair {
  net::EventQueue queue;
  net::Channel ab;
  net::Channel ba;
  std::shared_ptr<ReliableLink> a;  // sends on ab, receives from ba
  std::shared_ptr<ReliableLink> b;
  std::vector<std::string> at_a;  // payloads delivered to each endpoint
  std::vector<std::string> at_b;

  explicit LinkPair(std::uint64_t seed, const ReliabilityConfig& cfg = on(),
                    net::LatencyModel latency = net::LatencyModel::fixed(10.0),
                    net::Ordering ordering = net::Ordering::kFifo)
      : ab(queue, latency, util::Rng(seed), "a->b", ordering),
        ba(queue, latency, util::Rng(seed + 1), "b->a", ordering) {
    a = ReliableLink::make(
        queue, on(cfg), "a", [this](net::Payload p) { ab.send(std::move(p)); },
        [this](const net::Payload& p) { at_a.push_back(str(p)); });
    b = ReliableLink::make(
        queue, on(cfg), "b", [this](net::Payload p) { ba.send(std::move(p)); },
        [this](const net::Payload& p) { at_b.push_back(str(p)); });
    ab.set_receiver([this](const net::Payload& p) { b->on_frame(p); });
    ba.set_receiver([this](const net::Payload& p) { a->on_frame(p); });
  }
};

TEST(ReliableLink, CleanChannelDeliversInOrder) {
  LinkPair pair(1);
  for (int i = 0; i < 20; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  // Acks drained the retransmit buffer; no spurious retransmits on a
  // clean 10 ms channel with an 80 ms RTO.
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_EQ(pair.a->stats().retransmits, 0u);
  EXPECT_EQ(pair.at_a.size(), 0u);  // pure acks carry no payload
}

TEST(ReliableLink, SurvivesHeavyDropWithRetransmits) {
  LinkPair pair(2);
  net::FaultPlan plan;
  plan.drop_prob = 0.4;
  pair.ab.set_fault_plan(plan);
  pair.ba.set_fault_plan(plan);  // acks get lost too
  for (int i = 0; i < 50; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  // Lost frames (and lost acks) forced resends; selective repeat keeps
  // them targeted, so duplicates are possible but no longer guaranteed.
  EXPECT_GT(pair.a->stats().retransmits + pair.a->stats().fast_retransmits,
            0u);
}

TEST(ReliableLink, DuplicationIsSuppressed) {
  LinkPair pair(3);
  net::FaultPlan plan;
  plan.dup_prob = 1.0;  // every frame arrives twice
  pair.ab.set_fault_plan(plan);
  for (int i = 0; i < 10; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 10u);
  EXPECT_GE(pair.b->stats().duplicates, 10u);
}

TEST(ReliableLink, CorruptionIsDetectedAndHealed) {
  LinkPair pair(4);
  net::FaultPlan plan;
  plan.corrupt_prob = 0.3;
  pair.ab.set_fault_plan(plan);
  for (int i = 0; i < 40; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_GT(pair.b->stats().checksum_rejects, 0u);
}

TEST(ReliableLink, ReimposesFifoOverUnorderedChannel) {
  ReliabilityConfig cfg;
  LinkPair pair(5, cfg, net::LatencyModel::uniform(1.0, 200.0),
                net::Ordering::kUnordered);
  for (int i = 0; i < 40; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_GT(pair.b->stats().reordered, 0u);  // gaps actually occurred
}

TEST(ReliableLink, BidirectionalTrafficPiggybacksAcks) {
  LinkPair pair(6);
  for (int i = 0; i < 10; ++i) {
    pair.a->send(text("a" + std::to_string(i)));
    pair.b->send(text("b" + std::to_string(i)));
  }
  pair.queue.run();
  EXPECT_EQ(pair.at_a.size(), 10u);
  EXPECT_EQ(pair.at_b.size(), 10u);
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_EQ(pair.b->unacked_count(), 0u);
}

TEST(ReliableLink, AdaptiveRtoConvergesOnCleanChannel) {
  LinkPair pair(8);
  EXPECT_DOUBLE_EQ(pair.a->rto_ms(), 80.0);  // no samples yet: initial
  for (int i = 0; i < 20; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
    pair.queue.run();
  }
  // Each round trip measures ~25 ms (10 ms out, 5 ms delayed ack,
  // 10 ms back); rttvar decays toward zero, so the adaptive RTO
  // converges near srtt — far below the 80 ms initial guess.
  EXPECT_TRUE(pair.a->estimator().has_sample());
  EXPECT_NEAR(pair.a->estimator().srtt_ms(), 25.0, 1.0);
  EXPECT_LT(pair.a->rto_ms(), 80.0);
  EXPECT_GE(pair.a->rto_ms(), 20.0);  // min_rto floor
}

TEST(ReliableLink, SelectiveRepeatHealsAHoleCheaperThanGoBackN) {
  // One lost frame at the head of a 10-frame burst.  With SACK the
  // receiver reports the 9 buffered frames and the sender repairs just
  // the hole (a fast retransmit); in go-back-N mode the RTO resends the
  // whole window.
  struct ModeStats {
    LinkStats a;
    LinkStats b;
  };
  auto run_mode = [](bool go_back_n) {
    ReliabilityConfig cfg;
    cfg.go_back_n = go_back_n;
    LinkPair pair(9, cfg);
    pair.ab.set_down(true);
    pair.a->send(text("hole"));  // dropped
    pair.ab.set_down(false);
    for (int i = 1; i < 10; ++i) pair.a->send(text("m" + std::to_string(i)));
    pair.queue.run();
    EXPECT_EQ(pair.at_b.size(), 10u);
    EXPECT_EQ(pair.at_b.front(), "hole");
    return ModeStats{pair.a->stats(), pair.b->stats()};
  };
  const ModeStats sack = run_mode(false);
  const ModeStats gbn = run_mode(true);
  EXPECT_GE(sack.b.sacks_sent, 1u);
  EXPECT_EQ(sack.a.fast_retransmits, 1u);  // only the hole was resent
  EXPECT_EQ(sack.a.retransmits, 0u);       // the RTO never fired
  EXPECT_EQ(gbn.b.sacks_sent, 0u);
  EXPECT_GE(gbn.a.retransmits, 10u);  // the whole window went again
  EXPECT_LT(sack.a.bytes_retransmitted, gbn.a.bytes_retransmitted);
}

TEST(ReliableLink, IdleReackRepairsALostAck) {
  LinkPair pair(10);
  pair.ba.set_down(true);  // the ack path is dead, data still flows
  pair.a->send(text("m0"));
  pair.queue.run_until(20.0);  // delivered; its delayed ack was dropped
  EXPECT_EQ(pair.at_b.size(), 1u);
  EXPECT_EQ(pair.a->unacked_count(), 1u);
  pair.ba.set_down(false);
  pair.queue.run();
  // The idle re-ack (one-shot, ~0.5·RTO after the lost ack) beat the
  // sender's 80 ms RTO: the window drained with zero retransmissions.
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_EQ(pair.a->stats().retransmits, 0u);
  EXPECT_GE(pair.b->stats().acks_sent, 2u);
}

TEST(ReliableLink, KarnExcludesRetransmittedSamples) {
  LinkPair pair(12);
  pair.ab.set_down(true);
  pair.a->send(text("m0"));  // first transmission dropped
  pair.queue.run_until(10.0);
  pair.ab.set_down(false);
  pair.queue.run();
  // The frame was only delivered via its RTO retransmission (t=80); the
  // ack's RTT is ambiguous, so Karn discards the sample and the backed-
  // off multiplier stays in force.
  EXPECT_EQ(pair.at_b.size(), 1u);
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_EQ(pair.a->stats().retransmits, 1u);
  EXPECT_FALSE(pair.a->estimator().has_sample());
  EXPECT_DOUBLE_EQ(pair.a->rto_ms(), 160.0);  // 80 · backoff 2
  // A fresh frame sent exactly once finally yields a sample, resetting
  // the backoff and adapting the timer to the measured path.
  pair.a->send(text("m1"));
  pair.queue.run();
  EXPECT_TRUE(pair.a->estimator().has_sample());
  EXPECT_NEAR(pair.a->estimator().srtt_ms(), 25.0, 1.0);
  EXPECT_LT(pair.a->rto_ms(), 160.0);
}

TEST(ReliableLink, BackpressureQueuesInsteadOfThrowing) {
  ReliabilityConfig cfg;
  cfg.max_unacked = 8;
  LinkPair pair(7, cfg);
  pair.ab.set_down(true);  // nothing ever acked
  for (int i = 0; i < 20; ++i) pair.a->send(text("m" + std::to_string(i)));
  // The window filled at 8; the remaining 12 queued locally.
  EXPECT_TRUE(pair.a->send_window_full());
  EXPECT_EQ(pair.a->unacked_count(), 20u);
  EXPECT_EQ(pair.a->queued_count(), 12u);
  EXPECT_EQ(pair.a->stats().stalls, 12u);
  EXPECT_EQ(pair.a->stats().data_sent, 8u);  // only the window transmitted

  // Once the line heals, acks open the window and the queue drains —
  // every payload arrives exactly once, in order.
  pair.ab.set_down(false);
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_FALSE(pair.a->send_window_full());
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_EQ(pair.a->queued_count(), 0u);
}

TEST(ReliableLink, BackpressureStallAndDrainUnderLoss) {
  // Property flavor: a tiny window, a lossy channel, and more sends
  // than window slots.  Whatever the fault pattern, nothing throws,
  // nothing is lost, and the queue fully drains.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    ReliabilityConfig cfg;
    cfg.max_unacked = 4;
    LinkPair pair(seed, cfg);
    net::FaultPlan plan;
    plan.drop_prob = 0.3;
    pair.ab.set_fault_plan(plan);
    pair.ba.set_fault_plan(plan);
    for (int i = 0; i < 60; ++i) pair.a->send(text("m" + std::to_string(i)));
    EXPECT_GT(pair.a->stats().stalls, 0u) << "seed " << seed;
    pair.queue.run();
    ASSERT_EQ(pair.at_b.size(), 60u) << "seed " << seed;
    for (int i = 0; i < 60; ++i) {
      EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
                "m" + std::to_string(i));
    }
    EXPECT_EQ(pair.a->unacked_count(), 0u);
  }
}

TEST(ReliableLink, PassthroughCarriesRawBytes) {
  // cfg.enabled == false: no framing, no state — bytes in, bytes out.
  ReliabilityConfig cfg;  // default: disabled
  net::EventQueue queue;
  net::Channel ab(queue, net::LatencyModel::fixed(10.0), util::Rng(1),
                  "a->b");
  std::vector<std::string> at_b;
  auto b = ReliableLink::make(
      queue, cfg, "b", [](net::Payload) {},
      [&at_b](const net::Payload& p) { at_b.push_back(str(p)); });
  ab.set_receiver([&b](const net::Payload& p) { b->on_frame(p); });
  auto a = ReliableLink::make(
      queue, cfg, "a", [&ab](net::Payload p) { ab.send(std::move(p)); },
      [](const net::Payload&) {});
  a->send(text("raw"));
  queue.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], "raw");  // not a 0xF0 frame — the bytes themselves
  EXPECT_EQ(a->stats().data_sent, 0u);
  EXPECT_EQ(a->unacked_count(), 0u);
  EXPECT_FALSE(a->send_window_full());
}

// --- checkpoint / restore --------------------------------------------

TEST(ReliableLinkState, CodecRoundTrip) {
  ReliableLink::State s;
  s.next_seq = 12;
  s.expected = 7;
  s.ack_due = true;
  s.unacked = {{10, text("u10")}, {11, text("u11")}};
  s.out_of_order = {{9, text("o9")}};
  util::ByteSink sink;
  {
    LinkPair pair(8);
    for (int i = 0; i < 3; ++i) pair.a->send(text("m"));
    pair.queue.run();
    pair.a->encode_state(sink);
  }
  // Decode what a live link encoded...
  {
    util::ByteSource src(sink.bytes());
    const ReliableLink::State live = ReliableLink::decode_state(src);
    EXPECT_EQ(live.next_seq, 4u);
    EXPECT_TRUE(live.unacked.empty());
  }
  // ...and a hand-built state round-trips through a restored link.
  {
    net::EventQueue queue;
    auto link = ReliableLink::restore(
        queue, on(), "r", s, [](net::Payload) {},
        [](const net::Payload&) {});
    util::ByteSink out;
    link->encode_state(out);
    util::ByteSource src(out.bytes());
    EXPECT_EQ(ReliableLink::decode_state(src), s);
  }
}

TEST(ReliableLink, RestoredSenderFinishesTheConversation) {
  // A sender crashes with unacked frames; its restored incarnation must
  // retransmit them and complete delivery.
  net::EventQueue queue;
  net::Channel ab(queue, net::LatencyModel::fixed(10.0), util::Rng(1),
                  "a->b");
  net::Channel ba(queue, net::LatencyModel::fixed(10.0), util::Rng(2),
                  "b->a");
  std::vector<std::string> at_b;
  auto b = ReliableLink::make(
      queue, on(), "b",
      [&ba](net::Payload p) { ba.send(std::move(p)); },
      [&at_b](const net::Payload& p) { at_b.push_back(str(p)); });
  ab.set_receiver([&b](const net::Payload& p) { b->on_frame(p); });

  auto a = ReliableLink::make(
      queue, on(), "a",
      [&ab](net::Payload p) { ab.send(std::move(p)); },
      [](const net::Payload&) {});
  ba.set_receiver([&a](const net::Payload& p) { a->on_frame(p); });

  ab.set_down(true);  // the first transmissions vanish
  a->send(text("one"));
  a->send(text("two"));
  const ReliableLink::State ckpt = a->state();
  EXPECT_EQ(ckpt.unacked.size(), 2u);

  // Crash: the link object dies (its timers evaporate via weak_ptr),
  // the line comes back up, and a restored incarnation takes over.
  a.reset();
  ab.set_down(false);
  ab.drop_in_flight();
  a = ReliableLink::restore(
      queue, on(), "a", ckpt,
      [&ab](net::Payload p) { ab.send(std::move(p)); },
      [](const net::Payload&) {});
  ba.set_receiver([&a](const net::Payload& p) { a->on_frame(p); });

  queue.run();
  ASSERT_EQ(at_b.size(), 2u);
  EXPECT_EQ(at_b[0], "one");
  EXPECT_EQ(at_b[1], "two");
  EXPECT_EQ(a->unacked_count(), 0u);
}

TEST(ReliableLink, NoteReplayedDeliveryDedupsTheRetransmission) {
  // Receiver crash-restarts having already processed seq 1 from its own
  // durable log: the cursor advances without redelivery, and the peer's
  // retransmission of seq 1 dedups.
  LinkPair pair(10);
  pair.ba.set_down(true);  // b's acks are lost
  pair.a->send(text("logged"));
  pair.queue.run_until(30.0);
  ASSERT_EQ(pair.at_b.size(), 1u);

  // b crashes (the old link object dies with its pending timers — the
  // idle re-ack must not fire from a dead process) and is rebuilt from
  // a pre-delivery checkpoint, then replays "logged" from its WAL.
  pair.b.reset();
  const ReliableLink::State fresh;  // pre-conversation state
  pair.at_b.clear();
  auto b2 = ReliableLink::restore(
      pair.queue, on(), "b", fresh,
      [&pair](net::Payload p) { pair.ba.send(std::move(p)); },
      [&pair](const net::Payload& p) { pair.at_b.push_back(str(p)); });
  b2->note_replayed_delivery();
  EXPECT_EQ(b2->expected_seq(), 2u);
  pair.ab.set_receiver([&b2](const net::Payload& p) { b2->on_frame(p); });
  pair.ba.set_down(false);

  pair.queue.run();  // a's RTO retransmits seq 1; b2 must not redeliver
  EXPECT_EQ(pair.at_b.size(), 0u);
  EXPECT_GE(b2->stats().duplicates, 1u);
  EXPECT_EQ(pair.a->unacked_count(), 0u);  // b2 re-acked the duplicate
}

}  // namespace
}  // namespace ccvc::engine
