// ReliableLink protocol unit tests: exactly-once in-order delivery over
// faulty channels, retransmission, dedup, checksum rejection, and state
// checkpoint/restore.
#include "engine/reliable_link.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/event_queue.hpp"
#include "net/fault.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/varint.hpp"

namespace ccvc::engine {
namespace {

net::Payload text(const std::string& s) {
  return net::Payload(s.begin(), s.end());
}

std::string str(const net::Payload& p) {
  return std::string(p.begin(), p.end());
}

// --- frame codec -----------------------------------------------------

TEST(FrameCodec, DataRoundTrip) {
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 42;
  f.ack = 17;
  f.payload = text("hello");
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.kind, Frame::Kind::kData);
  EXPECT_EQ(g.seq, 42u);
  EXPECT_EQ(g.ack, 17u);
  EXPECT_EQ(g.payload, f.payload);
}

TEST(FrameCodec, AckRoundTrip) {
  Frame f;
  f.kind = Frame::Kind::kAck;
  f.ack = 99;
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.kind, Frame::Kind::kAck);
  EXPECT_EQ(g.ack, 99u);
  EXPECT_TRUE(g.payload.empty());
}

TEST(FrameCodec, EmptyPayloadRoundTrip) {
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 1;
  const Frame g = decode_frame(encode_frame(f));
  EXPECT_EQ(g.seq, 1u);
  EXPECT_TRUE(g.payload.empty());
}

TEST(FrameCodec, EverySingleBitFlipIsRejected) {
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 1234;
  f.ack = 56;
  f.payload = text("integrity");
  const net::Payload wire = encode_frame(f);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      net::Payload mutated = wire;
      mutated[i] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW(decode_frame(mutated), util::DecodeError)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(FrameCodec, TruncationIsRejected) {
  const net::Payload wire = encode_frame(Frame{
      Frame::Kind::kData, 7, 3, text("abc")});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const net::Payload prefix(wire.begin(),
                              wire.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode_frame(prefix), util::DecodeError) << "len " << len;
  }
}

// --- link pair over a channel ---------------------------------------

/// Two endpoints of one bidirectional conversation over two directed
/// channels (a→b and b→a), as the session wires them.
struct LinkPair {
  net::EventQueue queue;
  net::Channel ab;
  net::Channel ba;
  std::shared_ptr<ReliableLink> a;  // sends on ab, receives from ba
  std::shared_ptr<ReliableLink> b;
  std::vector<std::string> at_a;  // payloads delivered to each endpoint
  std::vector<std::string> at_b;

  explicit LinkPair(std::uint64_t seed, const ReliabilityConfig& cfg = {},
                    net::LatencyModel latency = net::LatencyModel::fixed(10.0),
                    net::Ordering ordering = net::Ordering::kFifo)
      : ab(queue, latency, util::Rng(seed), "a->b", ordering),
        ba(queue, latency, util::Rng(seed + 1), "b->a", ordering) {
    a = ReliableLink::make(
        queue, cfg, "a", [this](net::Payload p) { ab.send(std::move(p)); },
        [this](const net::Payload& p) { at_a.push_back(str(p)); });
    b = ReliableLink::make(
        queue, cfg, "b", [this](net::Payload p) { ba.send(std::move(p)); },
        [this](const net::Payload& p) { at_b.push_back(str(p)); });
    ab.set_receiver([this](const net::Payload& p) { b->on_frame(p); });
    ba.set_receiver([this](const net::Payload& p) { a->on_frame(p); });
  }
};

TEST(ReliableLink, CleanChannelDeliversInOrder) {
  LinkPair pair(1);
  for (int i = 0; i < 20; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  // Acks drained the retransmit buffer; no spurious retransmits on a
  // clean 10 ms channel with an 80 ms RTO.
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_EQ(pair.a->stats().retransmits, 0u);
  EXPECT_EQ(pair.at_a.size(), 0u);  // pure acks carry no payload
}

TEST(ReliableLink, SurvivesHeavyDropWithRetransmits) {
  LinkPair pair(2);
  net::FaultPlan plan;
  plan.drop_prob = 0.4;
  pair.ab.set_fault_plan(plan);
  pair.ba.set_fault_plan(plan);  // acks get lost too
  for (int i = 0; i < 50; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_GT(pair.a->stats().retransmits, 0u);
  EXPECT_GT(pair.b->stats().duplicates, 0u);  // retransmit races an ack
}

TEST(ReliableLink, DuplicationIsSuppressed) {
  LinkPair pair(3);
  net::FaultPlan plan;
  plan.dup_prob = 1.0;  // every frame arrives twice
  pair.ab.set_fault_plan(plan);
  for (int i = 0; i < 10; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 10u);
  EXPECT_GE(pair.b->stats().duplicates, 10u);
}

TEST(ReliableLink, CorruptionIsDetectedAndHealed) {
  LinkPair pair(4);
  net::FaultPlan plan;
  plan.corrupt_prob = 0.3;
  pair.ab.set_fault_plan(plan);
  for (int i = 0; i < 40; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_GT(pair.b->stats().checksum_rejects, 0u);
}

TEST(ReliableLink, ReimposesFifoOverUnorderedChannel) {
  ReliabilityConfig cfg;
  LinkPair pair(5, cfg, net::LatencyModel::uniform(1.0, 200.0),
                net::Ordering::kUnordered);
  for (int i = 0; i < 40; ++i) {
    pair.a->send(text("m" + std::to_string(i)));
  }
  pair.queue.run();
  ASSERT_EQ(pair.at_b.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(pair.at_b[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_GT(pair.b->stats().reordered, 0u);  // gaps actually occurred
}

TEST(ReliableLink, BidirectionalTrafficPiggybacksAcks) {
  LinkPair pair(6);
  for (int i = 0; i < 10; ++i) {
    pair.a->send(text("a" + std::to_string(i)));
    pair.b->send(text("b" + std::to_string(i)));
  }
  pair.queue.run();
  EXPECT_EQ(pair.at_a.size(), 10u);
  EXPECT_EQ(pair.at_b.size(), 10u);
  EXPECT_EQ(pair.a->unacked_count(), 0u);
  EXPECT_EQ(pair.b->unacked_count(), 0u);
}

TEST(ReliableLink, RetransmitBufferBoundIsEnforced) {
  ReliabilityConfig cfg;
  cfg.max_unacked = 8;
  LinkPair pair(7, cfg);
  pair.ab.set_down(true);  // nothing ever acked
  for (int i = 0; i < 8; ++i) pair.a->send(text("x"));
  EXPECT_THROW(pair.a->send(text("overflow")), ContractViolation);
}

// --- checkpoint / restore --------------------------------------------

TEST(ReliableLinkState, CodecRoundTrip) {
  ReliableLink::State s;
  s.next_seq = 12;
  s.expected = 7;
  s.ack_due = true;
  s.unacked = {{10, text("u10")}, {11, text("u11")}};
  s.out_of_order = {{9, text("o9")}};
  util::ByteSink sink;
  {
    LinkPair pair(8);
    for (int i = 0; i < 3; ++i) pair.a->send(text("m"));
    pair.queue.run();
    pair.a->encode_state(sink);
  }
  // Decode what a live link encoded...
  {
    util::ByteSource src(sink.bytes());
    const ReliableLink::State live = ReliableLink::decode_state(src);
    EXPECT_EQ(live.next_seq, 4u);
    EXPECT_TRUE(live.unacked.empty());
  }
  // ...and a hand-built state round-trips through a restored link.
  {
    net::EventQueue queue;
    auto link = ReliableLink::restore(
        queue, ReliabilityConfig{}, "r", s, [](net::Payload) {},
        [](const net::Payload&) {});
    util::ByteSink out;
    link->encode_state(out);
    util::ByteSource src(out.bytes());
    EXPECT_EQ(ReliableLink::decode_state(src), s);
  }
}

TEST(ReliableLink, RestoredSenderFinishesTheConversation) {
  // A sender crashes with unacked frames; its restored incarnation must
  // retransmit them and complete delivery.
  net::EventQueue queue;
  net::Channel ab(queue, net::LatencyModel::fixed(10.0), util::Rng(1),
                  "a->b");
  net::Channel ba(queue, net::LatencyModel::fixed(10.0), util::Rng(2),
                  "b->a");
  std::vector<std::string> at_b;
  auto b = ReliableLink::make(
      queue, ReliabilityConfig{}, "b",
      [&ba](net::Payload p) { ba.send(std::move(p)); },
      [&at_b](const net::Payload& p) { at_b.push_back(str(p)); });
  ab.set_receiver([&b](const net::Payload& p) { b->on_frame(p); });

  auto a = ReliableLink::make(
      queue, ReliabilityConfig{}, "a",
      [&ab](net::Payload p) { ab.send(std::move(p)); },
      [](const net::Payload&) {});
  ba.set_receiver([&a](const net::Payload& p) { a->on_frame(p); });

  ab.set_down(true);  // the first transmissions vanish
  a->send(text("one"));
  a->send(text("two"));
  const ReliableLink::State ckpt = a->state();
  EXPECT_EQ(ckpt.unacked.size(), 2u);

  // Crash: the link object dies (its timers evaporate via weak_ptr),
  // the line comes back up, and a restored incarnation takes over.
  a.reset();
  ab.set_down(false);
  ab.drop_in_flight();
  a = ReliableLink::restore(
      queue, ReliabilityConfig{}, "a", ckpt,
      [&ab](net::Payload p) { ab.send(std::move(p)); },
      [](const net::Payload&) {});
  ba.set_receiver([&a](const net::Payload& p) { a->on_frame(p); });

  queue.run();
  ASSERT_EQ(at_b.size(), 2u);
  EXPECT_EQ(at_b[0], "one");
  EXPECT_EQ(at_b[1], "two");
  EXPECT_EQ(a->unacked_count(), 0u);
}

TEST(ReliableLink, NoteReplayedDeliveryDedupsTheRetransmission) {
  // Receiver crash-restarts having already processed seq 1 from its own
  // durable log: the cursor advances without redelivery, and the peer's
  // retransmission of seq 1 dedups.
  LinkPair pair(10);
  pair.ba.set_down(true);  // b's acks are lost
  pair.a->send(text("logged"));
  pair.queue.run_until(30.0);
  ASSERT_EQ(pair.at_b.size(), 1u);

  // b crashes and is rebuilt from a pre-delivery checkpoint, then
  // replays "logged" from its WAL.
  const ReliableLink::State fresh;  // pre-conversation state
  pair.at_b.clear();
  auto b2 = ReliableLink::restore(
      pair.queue, ReliabilityConfig{}, "b", fresh,
      [&pair](net::Payload p) { pair.ba.send(std::move(p)); },
      [&pair](const net::Payload& p) { pair.at_b.push_back(str(p)); });
  b2->note_replayed_delivery();
  EXPECT_EQ(b2->expected_seq(), 2u);
  pair.ab.set_receiver([&b2](const net::Payload& p) { b2->on_frame(p); });
  pair.ba.set_down(false);

  pair.queue.run();  // a's RTO retransmits seq 1; b2 must not redeliver
  EXPECT_EQ(pair.at_b.size(), 0u);
  EXPECT_GE(b2->stats().duplicates, 1u);
  EXPECT_EQ(pair.a->unacked_count(), 0u);  // b2 re-acked the duplicate
}

}  // namespace
}  // namespace ccvc::engine
