// RttEstimator unit tests: Jacobson/Karels EWMA seeding and update
// arithmetic, rttvar convergence, min/max clamping, and the exponential
// timeout backoff with its cap and sample-driven reset.  (Karn's
// exclusion of retransmitted samples lives at the link layer — see
// reliable_link_test.cpp's KarnExcludesRetransmittedSamples.)
#include "engine/rtt.hpp"

#include <gtest/gtest.h>

namespace ccvc::engine {
namespace {

constexpr double kInit = 80.0;
constexpr double kMin = 20.0;
constexpr double kMax = 1500.0;
constexpr double kBackoff = 2.0;

RttEstimator est() { return RttEstimator(kInit, kMin, kMax, kBackoff); }

TEST(RttEstimator, InitialRtoBeforeAnySample) {
  auto e = est();
  EXPECT_FALSE(e.has_sample());
  EXPECT_DOUBLE_EQ(e.rto_ms(), kInit);
  EXPECT_DOUBLE_EQ(e.idle_ack_ms(), kInit / 2.0);
}

TEST(RttEstimator, FirstSampleSeedsSrttAndVar) {
  auto e = est();
  e.sample(100.0);
  EXPECT_TRUE(e.has_sample());
  EXPECT_DOUBLE_EQ(e.srtt_ms(), 100.0);
  EXPECT_DOUBLE_EQ(e.rttvar_ms(), 50.0);
  EXPECT_DOUBLE_EQ(e.rto_ms(), 300.0);  // srtt + 4·rttvar
}

TEST(RttEstimator, EwmaUpdateMatchesJacobsonKarels) {
  auto e = est();
  e.sample(100.0);
  e.sample(60.0);
  // rttvar <- 0.75·50    + 0.25·|100 − 60| = 47.5  (var updates first,
  // srtt   <- 0.875·100  + 0.125·60        = 95     against old srtt)
  EXPECT_DOUBLE_EQ(e.rttvar_ms(), 47.5);
  EXPECT_DOUBLE_EQ(e.srtt_ms(), 95.0);
  EXPECT_DOUBLE_EQ(e.rto_ms(), 95.0 + 4.0 * 47.5);
}

TEST(RttEstimator, RttvarConvergesOnASteadyLink) {
  auto e = est();
  for (int i = 0; i < 100; ++i) e.sample(30.0);
  EXPECT_DOUBLE_EQ(e.srtt_ms(), 30.0);
  EXPECT_LT(e.rttvar_ms(), 0.01);
  EXPECT_NEAR(e.rto_ms(), 30.0, 0.05);
}

TEST(RttEstimator, MinAndMaxClampTheEstimate) {
  auto lo = est();
  for (int i = 0; i < 100; ++i) lo.sample(1.0);
  EXPECT_DOUBLE_EQ(lo.rto_ms(), kMin);  // 1 + 4·ε rises to the floor
  auto hi = est();
  hi.sample(10000.0);
  EXPECT_DOUBLE_EQ(hi.rto_ms(), kMax);
}

TEST(RttEstimator, TimeoutBackoffDoublesUpToTheCeiling) {
  auto e = est();
  e.sample(30.0);
  const double base = e.rto_ms();  // 90
  e.on_timeout();
  EXPECT_DOUBLE_EQ(e.rto_ms(), 2.0 * base);
  for (int i = 0; i < 20; ++i) e.on_timeout();
  // The multiplier itself caps at max/min, and the product clamps at
  // the ceiling — 20 timeouts cannot push past it (or overflow).
  EXPECT_DOUBLE_EQ(e.rto_ms(), kMax);
}

TEST(RttEstimator, ValidSampleResetsTheBackoff) {
  auto e = est();
  e.sample(30.0);
  e.on_timeout();
  e.on_timeout();
  EXPECT_DOUBLE_EQ(e.rto_ms(), 360.0);  // 90 · 2 · 2
  e.sample(30.0);  // unambiguous evidence: the timer comes back down
  EXPECT_DOUBLE_EQ(e.rto_ms(), e.srtt_ms() + 4.0 * e.rttvar_ms());
}

TEST(RttEstimator, NegativeSamplesClampToZero) {
  auto e = est();
  e.sample(-5.0);  // clock skew artifact: treat as instantaneous
  EXPECT_DOUBLE_EQ(e.srtt_ms(), 0.0);
  EXPECT_DOUBLE_EQ(e.rto_ms(), kMin);
}

TEST(RttEstimator, IdleAckDelayTracksHalfSrtt) {
  auto e = est();
  e.sample(100.0);
  EXPECT_DOUBLE_EQ(e.idle_ack_ms(), 50.0);
  auto fast = est();
  fast.sample(1.0);  // floored at half the min RTO: no sub-ms ack spam
  EXPECT_DOUBLE_EQ(fast.idle_ack_ms(), kMin / 2.0);
}

}  // namespace
}  // namespace ccvc::engine
