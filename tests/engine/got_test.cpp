// GOT reference vs the bridge control.
//
// The production engine realizes §2.3 with the bridge algorithm; GOT
// [14] is the historical control the paper cites.  Shadow-executing GOT
// at the notifier on live sessions must reproduce the bridge's executed
// forms wherever GOT is defined (its ET partiality and the one lossy ET
// boundary are the documented exceptions).
#include <gtest/gtest.h>

#include "clocks/compressed_sv.hpp"
#include "engine/got.hpp"
#include "engine/session.hpp"
#include "ot/transform.hpp"
#include "sim/workload.hpp"

namespace ccvc::engine {
namespace {

TEST(Got, NoConcurrencyExecutesAsIs) {
  std::vector<GotHbItem> hb;
  hb.push_back(GotHbItem{ot::make_insert(0, "ab", 1), false});
  const ot::OpList o = ot::make_insert(1, "x", 2);
  const auto out = got_transform(hb, o);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, o);
}

TEST(Got, PureConcurrentSuffixIsInclusionFold) {
  // Suffix entirely concurrent: GOT degenerates to LIT — compare
  // directly.
  std::vector<GotHbItem> hb;
  hb.push_back(GotHbItem{ot::make_insert(0, "abc", 1), false});
  hb.push_back(GotHbItem{ot::make_delete(1, 1, 2), true});
  hb.push_back(GotHbItem{ot::make_insert(2, "Z", 3), true});
  const ot::OpList o = ot::make_insert(3, "!", 4);

  ot::OpList expect = o;
  expect = ot::include_list(expect, hb[1].executed);
  expect = ot::include_list(expect, hb[2].executed);
  const auto out = got_transform(hb, o);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, expect);
}

TEST(Got, InterleavedCausalOpIsExcludedThenReincluded) {
  // HB: concurrent C at index 0, then causal L (the sender's own op).
  // O was generated knowing L but not C; GOT must move O across C while
  // respecting that L's executed form already absorbed C.
  //   base doc: "0123456789"
  //   C = Ins("CC", 2)  (concurrent)
  //   L = Ins("LL", 6) as generated; executed after C: Ins("LL", 8)
  //   O = Ins("!", 4) in sender context "012345LL6789" (left of L).
  std::vector<GotHbItem> hb;
  hb.push_back(GotHbItem{ot::make_insert(2, "CC", 2), true});
  hb.push_back(GotHbItem{ot::make_insert(8, "LL", 1), false});
  const ot::OpList o = ot::make_insert(4, "!", 1);

  const auto out = got_transform(hb, o);
  ASSERT_TRUE(out.has_value());
  // Full context "01CC2345LL6789": between '3' and '4' is position 6
  // (sender pos 4, shifted +2 by the concurrent C).
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].pos, 6u);
}

TEST(Got, DependentInsertInsideOwnTextIsUndefined) {
  // O inserts inside the text of its own causal predecessor L — the
  // exclusion has no representation; GOT reports undefined (the
  // historical reason REDUCE ops carried recovery information).
  std::vector<GotHbItem> hb;
  hb.push_back(GotHbItem{ot::make_insert(2, "CC", 2), true});
  hb.push_back(GotHbItem{ot::make_insert(8, "LL", 1), false});
  const ot::OpList o = ot::make_insert(7, "!", 1);  // between the two Ls
  EXPECT_FALSE(got_transform(hb, o).has_value());
}

/// Effect-equality: captured delete text is an artifact of application
/// (the bridge captures at apply time, a prediction cannot), and
/// identity primitives have no effect — compare what the ops *do*.
bool same_effect(const ot::OpList& a, const ot::OpList& b) {
  auto essential = [](const ot::OpList& ops) {
    std::vector<std::tuple<ot::OpKind, std::size_t, std::size_t,
                           std::string>>
        out;
    for (const auto& p : ops) {
      if (p.is_identity()) continue;
      out.emplace_back(p.kind, p.pos,
                       p.kind == ot::OpKind::kDelete ? p.count : 0,
                       p.kind == ot::OpKind::kInsert ? p.text : "");
    }
    return out;
  };
  return essential(a) == essential(b);
}

struct ShadowTally {
  std::size_t checked = 0;
  std::size_t agreed = 0;
  std::size_t undefined = 0;
  std::size_t diverged = 0;
  bool converged = false;
};

/// Runs a session with a GOT shadow checker on every uplink.
ShadowTally run_shadowed(std::uint64_t seed, double insert_prob) {
  StarSessionConfig cfg;
  cfg.num_sites = 4;
  cfg.initial_doc = "the got cross check document body";
  cfg.uplink = net::LatencyModel::lognormal(40.0, 0.5, 10.0);
  cfg.downlink = net::LatencyModel::lognormal(40.0, 0.5, 10.0);
  cfg.seed = seed;

  StarSession session(cfg);
  ShadowTally tally;

  // Interpose on every uplink: compute the GOT prediction from the
  // notifier's pre-arrival history, deliver, compare with what the
  // bridge control actually executed.
  net::Network& net = session.network();
  for (SiteId i = 1; i <= cfg.num_sites; ++i) {
    net.channel(i, kNotifierSite)
        .set_receiver([&session, &tally, i](const net::Payload& bytes) {
          if (!is_leave_msg(bytes)) {
            const ClientMsg msg =
                decode_client_msg(bytes, StampMode::kCompressed);
            // Build the GOT view of HB_0 with formula-(7) flags.
            std::vector<GotHbItem> hb;
            for (const auto& e : session.notifier().history()) {
              const bool conc = clocks::concurrent_at_notifier_o1(
                  msg.stamp.csv, i, e.stamp_sum, e.stamp.at_or_zero(i),
                  e.origin);
              hb.push_back(GotHbItem{e.executed, conc});
            }
            const auto predicted = got_transform(hb, msg.ops);
            session.notifier().on_client_message(i, bytes);
            ++tally.checked;
            if (!predicted.has_value()) {
              ++tally.undefined;
            } else if (same_effect(
                           *predicted,
                           session.notifier().history().back().executed)) {
              ++tally.agreed;
            } else {
              ++tally.diverged;
            }
            return;
          }
          session.notifier().on_client_message(i, bytes);
        });
  }

  sim::WorkloadConfig w;
  w.ops_per_site = 30;
  w.mean_think_ms = 25.0;
  w.hotspot_prob = 0.4;
  w.insert_prob = insert_prob;
  w.seed = seed + 9;
  sim::StarWorkload workload(session, w);
  workload.start();
  session.run_to_quiescence();
  tally.converged = session.converged();
  return tally;
}

class GotShadowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GotShadowSweep, NearExactOnInsertOnlyWorkloads) {
  // With inserts only, each single exclusion is exact wherever defined;
  // what remains is rare path-dependence in GOT's exclude/re-include
  // chain (the two sides express the same document state through
  // different operation orders).  Divergence must be marginal.
  const ShadowTally t = run_shadowed(GetParam(), /*insert_prob=*/1.0);
  EXPECT_TRUE(t.converged);
  EXPECT_EQ(t.checked, 120u);
  EXPECT_EQ(t.agreed + t.undefined + t.diverged, t.checked);
  EXPECT_LE(t.diverged, t.checked / 20);  // ≤ 5%
  // Undefined cases (inserts landing inside concurrent peers' text) are
  // common under hotspot editing; defined cases dominate regardless.
  EXPECT_GT(t.agreed, t.checked * 2 / 3) << "undefined=" << t.undefined;
}

TEST_P(GotShadowSweep, MixedWorkloadsQuantifyEtInformationLoss) {
  // With deletes in play, naive ET hits its documented information-loss
  // boundary and GOT can drift off the (correct) bridge result — the
  // historical reason REDUCE operations carried recovery information.
  // The bridge remains authoritative (the session still converges);
  // here we quantify GOT's deficiency rather than hide it.
  const ShadowTally t = run_shadowed(GetParam() ^ 0xABCDu,
                                     /*insert_prob=*/0.7);
  EXPECT_TRUE(t.converged);  // production control is unaffected
  EXPECT_EQ(t.agreed + t.undefined + t.diverged, t.checked);
  EXPECT_GT(t.agreed, t.checked / 2);          // agreement dominates
  EXPECT_LT(t.diverged, t.checked / 3);        // loss is the minority
}

INSTANTIATE_TEST_SUITE_P(Seeds, GotShadowSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace ccvc::engine
