// Fig. 2 / §2.2 — the inconsistency problems the paper motivates with:
// running the same schedule *without* operational transformation must
// reproduce divergence and intention violation, and the §2.2
// two-operation example must produce the paper's exact artifacts.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/scenario.hpp"

namespace ccvc::sim {
namespace {

engine::EngineConfig no_transform_config() {
  engine::EngineConfig eng;
  eng.transform = false;
  eng.check_fidelity = false;  // no control to compare against
  return eng;
}

TEST(Fig2, Section22ExampleExactArtifacts) {
  // Only O1 and O2, the §2.2 pair.  Without transformation site 1
  // executes O2 as-is after O1 and gets "A1DE"; with transformation
  // everyone gets "A12B".
  for (const bool transform : {false, true}) {
    engine::EngineConfig eng;
    eng.transform = transform;
    eng.check_fidelity = transform;
    auto cfg = fig_scenario_config(eng);
    engine::StarSession session(cfg);
    session.queue().schedule_at(0.0,
                                [&] { session.client(2).erase(2, 3); });
    session.queue().schedule_at(5.0,
                                [&] { session.client(1).insert(1, "12"); });
    session.run_to_quiescence();

    if (transform) {
      EXPECT_TRUE(session.converged());
      EXPECT_EQ(session.client(1).text(), kSec22IntentionResult);  // A12B
    } else {
      EXPECT_EQ(session.client(1).text(), kSec22ViolatedResult);  // A1DE
    }
  }
}

TEST(Fig2, FullScheduleDivergesWithoutTransformation) {
  auto cfg = fig_scenario_config(no_transform_config());
  engine::StarSession session(cfg);
  schedule_fig_scenario(session);
  session.run_to_quiescence();

  EXPECT_FALSE(session.converged());

  // Site 1 shows the §2.2 intention violation: "2" lost, "D"/"E"
  // surviving.
  const std::string site1 = session.client(1).text();
  EXPECT_EQ(site1.find('2'), std::string::npos);
  EXPECT_NE(site1.find('D'), std::string::npos);
  EXPECT_NE(site1.find('E'), std::string::npos);
}

TEST(Fig2, VerdictsBecomeUnsoundWithoutTransformation) {
  // §6: "if the notifier propagates operations as-is ... the causality
  // relationships among these operations would still remain
  // N-dimensional".  The 2-element checks then disagree with the true
  // causality of the (untransformed) originals.
  ObserverMux mux;
  CausalityOracle oracle(3, /*transforms_enabled=*/false);
  mux.add(&oracle);
  auto cfg = fig_scenario_config(no_transform_config());
  engine::StarSession session(cfg, &mux);
  schedule_fig_scenario(session);
  session.run_to_quiescence();

  EXPECT_EQ(oracle.verdicts_checked(), 21u);
  EXPECT_GT(oracle.verdict_mismatches(), 0u);
  // Concrete instance from the schedule: at site 3, the relayed O1 is
  // checked against the buffered relayed O2; the scheme says "causally
  // ordered" (center ops are totally ordered) but the originals O1 and
  // O2 are concurrent, so the as-is O1 was *not* defined on a state
  // containing O2.
  bool found = false;
  for (const auto& v : oracle.mismatch_samples()) {
    if (v.at_site == 3 && v.incoming.id == (OpId{1, 1}) &&
        v.buffered.id == (OpId{2, 1})) {
      EXPECT_FALSE(v.concurrent);  // scheme's (wrong) verdict
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Fig2, SameScheduleWithTransformationIsSound) {
  // Control experiment: identical schedule, transformation on -> no
  // divergence, no verdict mismatches (also covered by Fig3Test, kept
  // here as the direct A/B of E8).
  ObserverMux mux;
  CausalityOracle oracle(3, /*transforms_enabled=*/true);
  mux.add(&oracle);
  auto cfg = fig_scenario_config();
  engine::StarSession session(cfg, &mux);
  schedule_fig_scenario(session);
  session.run_to_quiescence();

  EXPECT_TRUE(session.converged());
  EXPECT_EQ(oracle.verdict_mismatches(), 0u);
}

}  // namespace
}  // namespace ccvc::sim
