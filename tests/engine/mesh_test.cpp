// Mesh baseline: full-vector causal broadcast (delivery-order property
// validated by the oracle) and the SK differential variant.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/workload.hpp"

namespace ccvc::engine {
namespace {

MeshSessionConfig mesh_cfg(std::size_t n, MeshStamp stamp,
                           double lat_lo = 5.0, double lat_hi = 50.0) {
  MeshSessionConfig cfg;
  cfg.num_sites = n;
  cfg.stamp = stamp;
  cfg.latency = net::LatencyModel::uniform(lat_lo, lat_hi);
  return cfg;
}

TEST(Mesh, BroadcastReachesEveryone) {
  MeshSession s(mesh_cfg(3, MeshStamp::kFullVector));
  s.site(1).broadcast(ot::make_insert(0, "a", 1));
  s.run_to_quiescence();
  EXPECT_TRUE(s.all_delivered());
  for (SiteId i = 1; i <= 3; ++i) {
    EXPECT_EQ(s.site(i).delivery_log().size(), 1u);
  }
}

TEST(Mesh, CausalDeliveryHoldsBackEarlyMessages) {
  // Site 1's op reaches site 2 fast; site 2 replies; the reply can beat
  // site 1's original to site 3, which must hold it until ready.
  net::EventQueue* q = nullptr;
  MeshSessionConfig cfg;
  cfg.num_sites = 3;
  cfg.stamp = MeshStamp::kFullVector;
  cfg.latency = net::LatencyModel::fixed(10.0);
  sim::ObserverMux mux;
  sim::CausalityOracle oracle(3);
  mux.add(&oracle);
  MeshSession s(cfg, &mux);
  q = &s.queue();

  // t=0: site 1 broadcasts A.  t=10 site 2 has it; t=12 site 2
  // broadcasts B (causally after A).  Both reach site 3 at t=20/t=22 —
  // fine.  To force inversion we use per-direction latencies: instead,
  // emulate by delaying site 1's broadcast handling via a long channel:
  // simplest is to drive channels directly — covered by the randomized
  // sweep below; here we check the plain causal chain delivers in order.
  q->schedule_at(0.0, [&] { s.site(1).broadcast(ot::make_insert(0, "A", 1)); });
  q->schedule_at(12.0,
                 [&] { s.site(2).broadcast(ot::make_insert(0, "B", 2)); });
  s.run_to_quiescence();
  EXPECT_TRUE(s.all_delivered());
  EXPECT_EQ(oracle.mesh_causal_violations(), 0u);
  // Site 3 must deliver A before B.
  const auto& log = s.site(3).delivery_log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (OpId{1, 1}));
  EXPECT_EQ(log[1], (OpId{2, 1}));
}

class MeshSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MeshSweep, RandomSessionsDeliverCausally) {
  const auto [n, seed] = GetParam();
  sim::ObserverMux mux;
  sim::CausalityOracle oracle(n);
  mux.add(&oracle);
  auto cfg = mesh_cfg(n, MeshStamp::kFullVector, 1.0, 200.0);
  cfg.seed = seed;
  MeshSession s(cfg, &mux);

  sim::WorkloadConfig w;
  w.ops_per_site = 20;
  w.mean_think_ms = 30.0;
  w.seed = seed * 7 + 1;
  sim::MeshWorkload workload(s, w);
  workload.start();
  s.run_to_quiescence();

  EXPECT_TRUE(s.all_delivered());
  EXPECT_EQ(oracle.mesh_causal_violations(), 0u);
  EXPECT_EQ(oracle.mesh_deliveries(), n * (n - 1) * 20u);
  // Every site ends with the same complete clock.
  const auto& ref = s.site(1).clock();
  for (SiteId i = 2; i <= n; ++i) {
    EXPECT_EQ(s.site(i).clock(), ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{7}),
                       ::testing::Values(1u, 2u, 3u)));

TEST(MeshSk, ClocksMatchFullVectorProtocol) {
  // Run the same deterministic workload under both stamp modes; the SK
  // sites' reconstructed clocks must match the full-vector protocol's
  // event counts at quiescence.  (SK ticks on sends/receives, so compare
  // against its own mode across seeds for internal consistency, and
  // check every site converges to the same global view.)
  auto cfg = mesh_cfg(4, MeshStamp::kSkDiff, 2.0, 40.0);
  MeshSession s(cfg);
  sim::WorkloadConfig w;
  w.ops_per_site = 15;
  w.seed = 99;
  sim::MeshWorkload workload(s, w);
  workload.start();
  s.run_to_quiescence();
  EXPECT_TRUE(s.all_delivered());
  // Each site has 45 send events (15 ops x 3 peers) and 45 receives, so
  // its own component is exactly 90.  A peer's view of site j lags only
  // by the sends that followed the last message j addressed to it: for
  // the final op that is at most 2 sends, so the view is >= 43.
  for (SiteId i = 1; i <= 4; ++i) {
    for (SiteId j = 1; j <= 4; ++j) {
      if (i == j) {
        EXPECT_EQ(s.site(i).clock()[j], 90u);
      } else {
        EXPECT_GE(s.site(i).clock()[j], 43u);
      }
    }
  }
}

TEST(MeshSk, WinsUnderLocalizedTraffic) {
  // SK's compression premise ([13], quoted in §1): "only few [processes]
  // are likely to interact frequently by direct message exchanges".
  // With ring-localized traffic the differential timestamps stay small
  // while the full vector always costs ~N bytes.
  // 32 processes, but only 0 and 1 interact frequently; the rest send a
  // single message each at the start.
  const std::size_t n = 32;
  std::vector<clocks::SkProcess> procs;
  for (SiteId i = 0; i < n; ++i) procs.emplace_back(i, n);
  for (SiteId i = 2; i < n; ++i) {
    procs[0].on_receive(procs[i].prepare_send(0));
  }

  std::uint64_t sk_bytes = 0, full_bytes = 0;
  for (int round = 0; round < 100; ++round) {
    for (const auto& [from, to] : {std::pair<SiteId, SiteId>{0, 1},
                                   std::pair<SiteId, SiteId>{1, 0}}) {
      const auto ts = procs[from].prepare_send(to);
      sk_bytes += clocks::sk_encoded_size(ts);
      full_bytes += procs[from].clock().encoded_size();
      procs[to].on_receive(ts);
    }
  }
  // Steady-state ping-pong messages carry 1-2 entries versus a
  // 32-component vector.
  EXPECT_LT(sk_bytes * 4, full_bytes);
  // Correctness: process 1 still learned every idle process's event
  // through the diffs of the first messages.
  for (SiteId i = 2; i < n; ++i) EXPECT_EQ(procs[1].clock()[i], 1u);
}

TEST(MeshSk, BroadcastTrafficDegradesTowardLinear) {
  // The paper's critique of [13]: "the size of the message timestamps is
  // still linear in N in the worst case".  All-to-all broadcast is that
  // worst case — nearly every component changes between successive
  // messages on a pair, so SK ships ~N entries (at ~2 bytes each it can
  // even exceed the plain vector).
  const std::size_t n = 16;
  sim::ObserverMux mux;
  auto cfg = mesh_cfg(n, MeshStamp::kSkDiff, 1.0, 30.0);
  MeshSession s(cfg, &mux);
  sim::MetricsCollector metrics(s.queue());
  mux.add(&metrics);
  sim::WorkloadConfig w;
  w.ops_per_site = 10;
  w.seed = 5;
  sim::MeshWorkload workload(s, w);
  workload.start();
  s.run_to_quiescence();

  // Average stamp is a significant fraction of N entries, i.e. clearly
  // linear, not constant.
  const double avg_stamp = metrics.stamp_size().mean();
  EXPECT_GT(avg_stamp, static_cast<double>(n));  // > N bytes on average
}

TEST(Mesh, ClockMemoryMatchesClaim) {
  // E4: full-vector keeps one (N+1)-vector; SK keeps three.
  MeshSession full(mesh_cfg(8, MeshStamp::kFullVector));
  MeshSession sk(mesh_cfg(8, MeshStamp::kSkDiff));
  EXPECT_EQ(full.site(1).clock_memory_bytes(), 9u * 8u);
  EXPECT_EQ(sk.site(1).clock_memory_bytes(), 3u * 9u * 8u);
}

}  // namespace
}  // namespace ccvc::engine
