#include "engine/message.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/varint.hpp"

namespace ccvc::engine {
namespace {

TEST(Message, ClientMsgRoundTripCompressed) {
  ClientMsg msg;
  msg.id = OpId{3, 7};
  msg.ops = ot::make_insert(5, "hi", 3);
  msg.stamp.csv = clocks::CompressedSv{4, 7};
  const net::Payload bytes = encode(msg, StampMode::kCompressed);
  const ClientMsg back = decode_client_msg(bytes, StampMode::kCompressed);
  EXPECT_EQ(back.id, msg.id);
  EXPECT_EQ(back.ops, msg.ops);
  EXPECT_EQ(back.stamp.csv, msg.stamp.csv);
}

TEST(Message, CenterMsgRoundTripCompressed) {
  CenterMsg msg;
  msg.id = OpId{2, 1};
  msg.ops = ot::make_delete(0, 2, 2);
  msg.stamp.csv = clocks::CompressedSv{9, 1};
  const net::Payload bytes = encode(msg, StampMode::kCompressed);
  const CenterMsg back = decode_center_msg(bytes, StampMode::kCompressed);
  EXPECT_EQ(back.id, msg.id);
  EXPECT_EQ(back.stamp.csv, msg.stamp.csv);
  EXPECT_EQ(back.ops.size(), 2u);
}

TEST(Message, FullVectorRoundTrip) {
  ClientMsg msg;
  msg.id = OpId{1, 1};
  msg.ops = ot::make_insert(0, "x", 1);
  msg.stamp.full =
      clocks::VersionVector(std::vector<std::uint64_t>{2, 1, 0, 5});
  const net::Payload bytes = encode(msg, StampMode::kFullVector);
  const ClientMsg back = decode_client_msg(bytes, StampMode::kFullVector);
  EXPECT_EQ(back.stamp.full, msg.stamp.full);
}

TEST(Message, WrongTagRejected) {
  ClientMsg msg;
  msg.id = OpId{1, 1};
  msg.ops = ot::make_identity(1);
  const net::Payload bytes = encode(msg, StampMode::kCompressed);
  EXPECT_THROW(decode_center_msg(bytes, StampMode::kCompressed),
               util::DecodeError);
}

TEST(Message, TrailingGarbageRejected) {
  ClientMsg msg;
  msg.id = OpId{1, 1};
  msg.ops = ot::make_identity(1);
  net::Payload bytes = encode(msg, StampMode::kCompressed);
  bytes.push_back(0xFF);
  EXPECT_THROW(decode_client_msg(bytes, StampMode::kCompressed),
               util::DecodeError);
}

TEST(Message, CompressedStampIsConstantSizeInN) {
  // The headline property: the wire timestamp does not grow with N.
  CenterMsg msg;
  msg.id = OpId{1, 1};
  msg.ops = ot::make_insert(0, "x", 1);
  msg.stamp.csv = clocks::CompressedSv{90, 3};
  const std::size_t sz = stamp_wire_size(msg.stamp, StampMode::kCompressed);
  EXPECT_EQ(sz, 2u);  // two sub-128 varints

  // Versus a 64-site full vector:
  msg.stamp.full = clocks::VersionVector(65);
  EXPECT_EQ(stamp_wire_size(msg.stamp, StampMode::kFullVector), 66u);
}

TEST(Message, ToStringOfModes) {
  EXPECT_STREQ(to_string(StampMode::kCompressed), "compressed-2");
  EXPECT_STREQ(to_string(StampMode::kFullVector), "full-vector");
}

}  // namespace
}  // namespace ccvc::engine
