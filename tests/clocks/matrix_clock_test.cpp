// Matrix clocks: own row behaves as a vector clock; stability detection
// is sound (never declares an event stable that some process misses)
// and live (everything becomes stable once gossip completes).
#include "clocks/matrix_clock.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccvc::clocks {
namespace {

TEST(MatrixClock, StartsEmpty) {
  const MatrixClock m(0, 3);
  EXPECT_EQ(m.own_row().sum(), 0u);
  EXPECT_EQ(m.stable_index(0), 0u);
  EXPECT_EQ(m.memory_bytes(), 9u * 8u);
}

TEST(MatrixClock, LocalEventsTickOwnRow) {
  MatrixClock m(1, 3);
  m.on_local_event();
  m.on_local_event();
  EXPECT_EQ(m.own_row()[1], 2u);
  EXPECT_EQ(m.row(0).sum(), 0u);  // knows nothing of others' knowledge
}

TEST(MatrixClock, ReceiveMergesKnowledge) {
  MatrixClock a(0, 3), b(1, 3);
  a.on_local_event();  // a:1
  b.on_receive(0, a.prepare_send());  // a ticks to 2 and ships
  EXPECT_EQ(b.own_row()[0], 2u);      // b knows a's 2 events
  EXPECT_EQ(b.row(0)[0], 2u);         // and knows that a knows them
  // a still has no idea what b knows.
  EXPECT_EQ(a.row(1).sum(), 0u);
}

TEST(MatrixClock, StabilityRequiresEveryonesKnowledge) {
  MatrixClock a(0, 3), b(1, 3), c(2, 3);
  // a's first events reach b but not c: not stable anywhere.
  b.on_receive(0, a.prepare_send());
  EXPECT_EQ(b.stable_index(0), 0u);  // c's row is still zero

  // b relays to c; c now knows a's event AND everyone's knowledge of it
  // (a's announced row traveled via b), so from c's vantage a's single
  // send event is stable.
  c.on_receive(1, b.prepare_send());
  EXPECT_EQ(c.row(1)[0], 1u);
  EXPECT_EQ(c.stable_index(0), 1u);  // min over rows of column 0
  // b, who never heard from c, still cannot call anything stable.
  EXPECT_EQ(b.stable_index(0), 0u);
}

TEST(MatrixClock, SelfReceiveRejected) {
  MatrixClock a(0, 2), b(1, 2);
  EXPECT_THROW(a.on_receive(0, b.prepare_send()), ContractViolation);
}

class MatrixGossipSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatrixGossipSweep, StabilityIsSoundAndEventuallyLive) {
  // Random gossip among n processes; ground truth: an event (p, t) is
  // truly stable when every process's own row has [p] >= t.  The matrix
  // estimate must never exceed the truth (soundness), and a full
  // all-to-all round at the end makes everything stable (liveness).
  util::Rng rng(GetParam());
  const std::size_t n = 4;
  std::vector<MatrixClock> procs;
  for (SiteId i = 0; i < n; ++i) procs.emplace_back(i, n);

  for (int step = 0; step < 300; ++step) {
    const auto from = static_cast<SiteId>(rng.index(n));
    if (rng.chance(0.4)) {
      procs[from].on_local_event();
    } else {
      auto to = static_cast<SiteId>(rng.index(n - 1));
      if (to >= from) ++to;
      procs[to].on_receive(from, procs[from].prepare_send());
    }
    // Soundness at every process, for every column.
    for (SiteId obs = 0; obs < n; ++obs) {
      for (SiteId col = 0; col < n; ++col) {
        std::uint64_t truly_known_by_all =
            procs[0].own_row()[col];
        for (SiteId q = 1; q < n; ++q) {
          truly_known_by_all =
              std::min(truly_known_by_all, procs[q].own_row()[col]);
        }
        ASSERT_LE(procs[obs].stable_index(col), truly_known_by_all)
            << "obs=" << obs << " col=" << col << " step=" << step;
      }
    }
  }

  // Two full gossip rounds: everyone hears everyone, then everyone
  // hears that everyone heard.
  for (int round = 0; round < 2; ++round) {
    for (SiteId i = 0; i < n; ++i) {
      for (SiteId j = 0; j < n; ++j) {
        if (i != j) procs[j].on_receive(i, procs[i].prepare_send());
      }
    }
  }
  for (SiteId obs = 0; obs < n; ++obs) {
    for (SiteId col = 0; col < n; ++col) {
      std::uint64_t min_known = procs[0].own_row()[col];
      for (SiteId q = 1; q < n; ++q) {
        min_known = std::min(min_known, procs[q].own_row()[col]);
      }
      // After the final round each observer's estimate reaches at least
      // the pre-round truth (new send/receive ticks keep moving the
      // frontier, so compare against what existed before the rounds is
      // conservative: estimate must be positive and close to truth).
      EXPECT_GE(procs[obs].stable_index(col) + 2 * n, min_known)
          << "obs=" << obs << " col=" << col;
      EXPECT_GT(procs[obs].stable_index(col), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixGossipSweep,
                         ::testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ccvc::clocks
