// Singhal–Kshemkalyani baseline: the differential protocol must
// reconstruct exactly the clocks a full-vector protocol would produce
// (under FIFO channels), while shipping fewer entries — but linearly
// many in the worst case, which is the paper's critique.
#include "clocks/sk_clock.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace ccvc::clocks {
namespace {

TEST(SkClock, FirstMessageCarriesOnlySenderComponent) {
  SkProcess p(0, 3);
  const SkTimestamp ts = p.prepare_send(1);
  // Only p's own component has been updated since LS[1] = 0.
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].site, 0u);
  EXPECT_EQ(ts[0].value, 1u);  // the send event itself
}

TEST(SkClock, SecondMessageToSamePeerCarriesOnlyNews) {
  SkProcess p(0, 4);
  (void)p.prepare_send(1);
  // Nothing else happened; the next message to 1 carries just the new
  // send event's own-component bump.
  const SkTimestamp ts = p.prepare_send(1);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].site, 0u);
  EXPECT_EQ(ts[0].value, 2u);
}

TEST(SkClock, ReceiveMergesEntriesAndTicks) {
  SkProcess a(0, 3);
  SkProcess b(1, 3);
  const SkTimestamp ts = a.prepare_send(1);
  b.on_receive(ts);
  EXPECT_EQ(b.clock()[0], 1u);  // learned a's event
  EXPECT_EQ(b.clock()[1], 1u);  // the receive ticked b
}

TEST(SkClock, RelayedKnowledgePropagates) {
  // a -> b, then b -> c: c must learn a's component through b.
  SkProcess a(0, 3), b(1, 3), c(2, 3);
  b.on_receive(a.prepare_send(1));
  c.on_receive(b.prepare_send(2));
  EXPECT_EQ(c.clock()[0], 1u);
  EXPECT_EQ(c.clock()[1], 2u);  // b's receive + send events
  EXPECT_EQ(c.clock()[2], 1u);
}

TEST(SkClock, SecondSendOmitsUnchangedThirdPartyComponents) {
  SkProcess a(0, 3), b(1, 3);
  b.on_receive(a.prepare_send(1));
  // b sends twice to 2; second message must not repeat a's component.
  const SkTimestamp first = b.prepare_send(2);
  const SkTimestamp second = b.prepare_send(2);
  EXPECT_EQ(first.size(), 2u);   // b's own + a's component
  EXPECT_EQ(second.size(), 1u);  // just b's own bump
}

TEST(SkClock, MemoryIsThreeVectors) {
  const SkProcess p(0, 64);
  EXPECT_EQ(p.memory_bytes(), 3u * 64u * sizeof(std::uint64_t));
}

TEST(SkClock, WireRoundTrip) {
  const SkTimestamp ts{{2, 300}, {5, 1}};
  util::ByteSink sink;
  encode_sk(ts, sink);
  EXPECT_EQ(sink.size(), sk_encoded_size(ts));
  util::ByteSource src(sink.bytes());
  EXPECT_EQ(decode_sk(src), ts);
}

// Reference implementation: the classic full-vector protocol with the
// same event structure (tick on send/receive, merge on receive).
class FullVcProcess {
 public:
  FullVcProcess(SiteId self, std::size_t n) : self_(self), v_(n) {}
  VersionVector send() {
    v_.tick(self_);
    return v_;
  }
  void receive(const VersionVector& stamp) {
    v_.tick(self_);
    v_.merge(stamp);
  }
  const VersionVector& clock() const { return v_; }

 private:
  SiteId self_;
  VersionVector v_;
};

class SkEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SkEquivalenceSweep, ReconstructsFullVectorClocks) {
  // Random FIFO exchanges among n processes; after every delivery the SK
  // clock must equal the reference full-vector clock.
  util::Rng rng(GetParam());
  const std::size_t n = 5;
  std::vector<SkProcess> sk;
  std::vector<FullVcProcess> ref;
  for (SiteId i = 0; i < n; ++i) {
    sk.emplace_back(i, n);
    ref.emplace_back(i, n);
  }

  struct InFlight {
    SkTimestamp sk_ts;
    VersionVector ref_ts;
  };
  // FIFO queue per (from, to).
  std::vector<std::vector<std::deque<InFlight>>> wire(
      n, std::vector<std::deque<InFlight>>(n));

  for (int step = 0; step < 600; ++step) {
    const auto from = static_cast<SiteId>(rng.index(n));
    if (rng.chance(0.55)) {
      auto to = static_cast<SiteId>(rng.index(n - 1));
      if (to >= from) ++to;
      wire[from][to].push_back(
          InFlight{sk[from].prepare_send(to), ref[from].send()});
    } else {
      // deliver the oldest message on a random non-empty channel
      std::vector<std::pair<SiteId, SiteId>> nonempty;
      for (SiteId i = 0; i < n; ++i)
        for (SiteId j = 0; j < n; ++j)
          if (!wire[i][j].empty()) nonempty.emplace_back(i, j);
      if (nonempty.empty()) continue;
      const auto [i, j] = nonempty[rng.index(nonempty.size())];
      const InFlight m = wire[i][j].front();
      wire[i][j].pop_front();
      sk[j].on_receive(m.sk_ts);
      ref[j].receive(m.ref_ts);
      ASSERT_EQ(sk[j].clock(), ref[j].clock()) << "at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkEquivalenceSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace ccvc::clocks
