// Lamport scalar clocks: consistency with causality holds, concurrency
// detection is impossible — the gap the paper's 2-integer scheme closes.
#include "clocks/lamport.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "clocks/version_vector.hpp"
#include "util/rng.hpp"

namespace ccvc::clocks {
namespace {

TEST(LamportClock, MonotoneLocalEvents) {
  LamportClock c;
  EXPECT_EQ(c.tick(), 1u);
  EXPECT_EQ(c.tick(), 2u);
  EXPECT_EQ(c.now(), 2u);
}

TEST(LamportClock, ReceiveJumpsPastSender) {
  LamportClock a, b;
  a.tick();
  a.tick();
  const std::uint64_t stamp = a.tick();  // 3
  b.on_receive(stamp);
  EXPECT_EQ(b.now(), 4u);
  EXPECT_GT(b.tick(), stamp);  // everything after the receive is later
}

TEST(LamportClock, ConsistentWithCausalityOnRandomRuns) {
  // a → b ⟹ C(a) < C(b): validated against a vector-clock ground truth
  // over random message exchanges.
  util::Rng rng(42);
  const std::size_t n = 5;
  std::vector<LamportClock> lamport(n);
  std::vector<VersionVector> vc(n, VersionVector(n));

  struct Ev {
    std::uint64_t scalar;
    VersionVector vector;
  };
  std::vector<Ev> events;
  std::deque<std::pair<std::uint64_t, VersionVector>> in_flight;

  for (int step = 0; step < 500; ++step) {
    const auto p = static_cast<SiteId>(rng.index(n));
    if (!in_flight.empty() && rng.chance(0.4)) {
      auto [s, v] = in_flight.front();
      in_flight.pop_front();
      lamport[p].on_receive(s);
      vc[p].merge(v);
      vc[p].tick(p);
      events.push_back(Ev{lamport[p].now(), vc[p]});
    } else {
      const std::uint64_t s = lamport[p].tick();
      vc[p].tick(p);
      events.push_back(Ev{s, vc[p]});
      if (rng.chance(0.6)) in_flight.emplace_back(s, vc[p]);
    }
  }

  std::size_t concurrent_but_ordered_scalars = 0;
  for (std::size_t i = 0; i < events.size(); i += 7) {
    for (std::size_t j = 0; j < events.size(); j += 5) {
      if (i == j) continue;
      if (events[i].vector.happened_before(events[j].vector)) {
        ASSERT_LT(events[i].scalar, events[j].scalar);  // consistency
      } else if (events[i].vector.concurrent_with(events[j].vector) &&
                 events[i].scalar < events[j].scalar) {
        // Scalar order exists even though the events are concurrent —
        // the information loss that makes scalars useless for
        // concurrency *detection*.
        ++concurrent_but_ordered_scalars;
      }
    }
  }
  EXPECT_GT(concurrent_but_ordered_scalars, 0u);
}

TEST(LamportClock, CannotDetectConcurrency) {
  // The canonical pair: two sites each do one local event, never
  // communicating.  Truly concurrent — but the scalars are ordered (or
  // equal), and no rule over scalars alone can tell this apart from a
  // genuine causal chain.
  LamportClock a, b;
  const std::uint64_t sa = a.tick();
  b.tick();
  const std::uint64_t sb = b.tick();
  EXPECT_LT(sa, sb);  // looks "ordered", yet nothing connects them

  // Contrast: the genuinely causal version gives the same scalar order.
  LamportClock c, d;
  const std::uint64_t sc = c.tick();
  d.on_receive(sc);
  const std::uint64_t sd = d.tick();
  EXPECT_LT(sc, sd);
  // Identical observable relation (sa<sb, sc<sd) for opposite truths.
}

}  // namespace
}  // namespace ccvc::clocks
