#include "clocks/version_vector.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccvc::clocks {
namespace {

TEST(VersionVector, StartsAtZero) {
  const VersionVector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0u);
  EXPECT_EQ(v.sum(), 0u);
}

TEST(VersionVector, TickAdvancesOneComponent) {
  VersionVector v(3);
  v.tick(1);
  v.tick(1);
  v.tick(2);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v[2], 1u);
  EXPECT_EQ(v.sum(), 3u);
  EXPECT_EQ(v.sum_except(1), 1u);
}

TEST(VersionVector, TickOutOfRangeThrows) {
  VersionVector v(2);
  EXPECT_THROW(v.tick(2), ContractViolation);
}

TEST(VersionVector, MergeIsComponentwiseMax) {
  VersionVector a(std::vector<std::uint64_t>{1, 5, 0});
  const VersionVector b(std::vector<std::uint64_t>{2, 3, 4});
  a.merge(b);
  EXPECT_EQ(a, VersionVector(std::vector<std::uint64_t>{2, 5, 4}));
}

TEST(VersionVector, MergeSizeMismatchThrows) {
  VersionVector a(2);
  const VersionVector b(3);
  EXPECT_THROW(a.merge(b), ContractViolation);
}

TEST(VersionVector, MergeComponent) {
  VersionVector v(3);
  EXPECT_TRUE(v.merge_component(1, 4));
  EXPECT_FALSE(v.merge_component(1, 3));  // lower: no change
  EXPECT_FALSE(v.merge_component(1, 4));  // equal: no change
  EXPECT_EQ(v[1], 4u);
}

TEST(VersionVector, CompareAllOrders) {
  using V = std::vector<std::uint64_t>;
  const VersionVector a(V{1, 2, 3});
  EXPECT_EQ(a.compare(VersionVector(V{1, 2, 3})), Order::kEqual);
  EXPECT_EQ(a.compare(VersionVector(V{2, 2, 3})), Order::kBefore);
  EXPECT_EQ(a.compare(VersionVector(V{1, 1, 3})), Order::kAfter);
  EXPECT_EQ(a.compare(VersionVector(V{2, 1, 3})), Order::kConcurrent);
  EXPECT_TRUE(a.happened_before(VersionVector(V{1, 2, 4})));
  EXPECT_TRUE(a.concurrent_with(VersionVector(V{0, 9, 3})));
}

TEST(VersionVector, ConcurrentByOriginFormula3) {
  // Paper formula (3): Oa ∥ Ob ⟺ Ta[x] > Tb[x] ∧ Tb[y] > Ta[y].
  using V = std::vector<std::uint64_t>;
  // Oa generated at site 1 with [0,1,0,0]; Ob at site 2 with [0,0,1,0]:
  // concurrent (the Fig. 2 O1/O2 pair).
  const VersionVector ta(V{0, 1, 0, 0});
  const VersionVector tb(V{0, 0, 1, 0});
  EXPECT_TRUE(VersionVector::concurrent_by_origin(ta, 1, tb, 2));
  EXPECT_TRUE(VersionVector::concurrent_by_origin(tb, 2, ta, 1));

  // Causally related: Ob at site 2 saw Oa.
  const VersionVector tb2(V{0, 1, 1, 0});
  EXPECT_FALSE(VersionVector::concurrent_by_origin(ta, 1, tb2, 2));
  EXPECT_FALSE(VersionVector::concurrent_by_origin(tb2, 2, ta, 1));
}

TEST(VersionVector, ConcurrentByOriginMatchesFullCompare) {
  // Formula (3) with origin components must agree with the full
  // pointwise comparison for clocks produced by a valid execution.  We
  // simulate random message exchanges among 4 sites.
  util::Rng rng(99);
  const std::size_t n = 4;
  std::vector<VersionVector> clock(n, VersionVector(n));
  struct Stamped {
    VersionVector v;
    SiteId site;
  };
  std::vector<Stamped> events;
  for (int step = 0; step < 300; ++step) {
    const auto s = static_cast<SiteId>(rng.index(n));
    if (rng.chance(0.4) && !events.empty()) {
      // receive a random earlier event's stamp
      clock[s].merge(events[rng.index(events.size())].v);
    }
    clock[s].tick(s);
    events.push_back({clock[s], s});
  }
  for (std::size_t i = 0; i < events.size(); i += 7) {
    for (std::size_t j = 0; j < events.size(); j += 5) {
      if (i == j || events[i].site == events[j].site) continue;
      const bool by_origin = VersionVector::concurrent_by_origin(
          events[i].v, events[i].site, events[j].v, events[j].site);
      const bool full = events[i].v.concurrent_with(events[j].v);
      EXPECT_EQ(by_origin, full) << "i=" << i << " j=" << j;
    }
  }
}

TEST(VersionVector, WireRoundTrip) {
  const VersionVector v(std::vector<std::uint64_t>{0, 300, 7, 128});
  util::ByteSink sink;
  v.encode(sink);
  EXPECT_EQ(sink.size(), v.encoded_size());
  util::ByteSource src(sink.bytes());
  EXPECT_EQ(VersionVector::decode(src), v);
  EXPECT_TRUE(src.exhausted());
}

TEST(VersionVector, EncodedSizeGrowsLinearlyWithN) {
  // The baseline's defining cost: N small components -> ~N+1 bytes.
  const VersionVector small(8);
  const VersionVector large(1024);
  EXPECT_EQ(small.encoded_size(), 1u + 8u);
  EXPECT_EQ(large.encoded_size(), 2u + 1024u);
}

TEST(VersionVector, Render) {
  const VersionVector v(std::vector<std::uint64_t>{1, 2, 0});
  EXPECT_EQ(v.str(), "[1,2,0]");
}

}  // namespace
}  // namespace ccvc::clocks
