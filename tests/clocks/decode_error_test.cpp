// Error paths of the wire codecs: truncated, corrupted, and hostile
// inputs must be rejected with DecodeError (the exception-discipline
// gate in tools/ccvc_sa pins decode paths to that one type) — never
// read out of bounds (the asan-ubsan preset verifies the "never") and
// never silently mis-decode.
#include <gtest/gtest.h>

#include <vector>

#include "clocks/compressed_sv.hpp"
#include "clocks/version_vector.hpp"
#include "engine/message.hpp"
#include "ot/text_op.hpp"
#include "util/check.hpp"
#include "util/varint.hpp"

namespace ccvc {
namespace {

using clocks::CompressedSv;
using clocks::VersionVector;
using util::ByteSink;
using util::ByteSource;
using util::DecodeError;

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

TEST(CompressedSvDecode, EmptyBufferThrows) {
  const auto buf = bytes({});
  ByteSource src(buf);
  EXPECT_THROW(CompressedSv::decode(src), DecodeError);
}

TEST(CompressedSvDecode, TruncatedAfterFirstElementThrows) {
  ByteSink sink;
  sink.put_uvarint(300);  // from_center only; from_site missing
  ByteSource src(sink.bytes());
  EXPECT_THROW(CompressedSv::decode(src), DecodeError);
}

TEST(CompressedSvDecode, TruncatedMidVarintThrows) {
  const auto buf = bytes({0x80});  // dangling continuation bit
  ByteSource src(buf);
  EXPECT_THROW(CompressedSv::decode(src), DecodeError);
}

TEST(VersionVectorDecode, LengthClaimBeyondBufferThrows) {
  ByteSink sink;
  sink.put_uvarint(1000);  // claims 1000 components, provides none
  ByteSource src(sink.bytes());
  EXPECT_THROW(VersionVector::decode(src), DecodeError);
}

// --- engine::Message ---------------------------------------------------

engine::ClientMsg sample_client_msg() {
  engine::ClientMsg msg;
  msg.id = OpId{2, 1};
  msg.ops = ot::make_insert(0, "hi", 2);
  msg.stamp.csv = CompressedSv{5, 3};
  return msg;
}

TEST(MessageDecode, WrongTagThrows) {
  const auto payload =
      engine::encode(sample_client_msg(), engine::StampMode::kCompressed);
  EXPECT_THROW(engine::decode_center_msg(payload,
                                         engine::StampMode::kCompressed),
               DecodeError);
}

TEST(MessageDecode, EveryTruncationThrowsCleanly) {
  // Chop the valid encoding at every length; each prefix must throw
  // DecodeError, never crash or mis-decode.
  const auto payload =
      engine::encode(sample_client_msg(), engine::StampMode::kCompressed);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const net::Payload prefix(payload.begin(),
                              payload.begin() +
                                  static_cast<std::ptrdiff_t>(len));
    EXPECT_ANY_THROW(
        engine::decode_client_msg(prefix, engine::StampMode::kCompressed))
        << "prefix length " << len;
  }
}

TEST(MessageDecode, TrailingBytesThrow) {
  auto payload =
      engine::encode(sample_client_msg(), engine::StampMode::kCompressed);
  payload.push_back(0x00);
  EXPECT_THROW(engine::decode_client_msg(payload,
                                         engine::StampMode::kCompressed),
               DecodeError);
}

TEST(MessageDecode, SiteIdOverflowThrows) {
  // Regression: a wire site id above UINT32_MAX used to be silently
  // truncated by static_cast<SiteId>, aliasing site 2^32+1 with site 1.
  ByteSink sink;
  sink.put_u8(0xC1);                    // client tag
  sink.put_uvarint(0x100000001ull);     // id.site overflows SiteId
  sink.put_uvarint(1);                  // id.seq
  CompressedSv{0, 1}.encode(sink);
  ot::encode(ot::make_insert(0, "x", 1), sink);
  EXPECT_THROW(engine::decode_client_msg(sink.bytes(),
                                         engine::StampMode::kCompressed),
               DecodeError);
}

TEST(MessageDecode, LeaveSiteOverflowThrows) {
  ByteSink sink;
  sink.put_u8(0xC4);  // leave tag
  sink.put_uvarint(0x100000000ull);
  EXPECT_TRUE(engine::is_leave_msg(sink.bytes()));
  EXPECT_THROW(engine::decode_leave(sink.bytes()), DecodeError);
}

TEST(MessageDecode, HostileDeleteCountIsRejectedBeforeAllocating) {
  // A 3-byte wire op claiming a 2^60-character delete must not make the
  // decoder materialize 2^60 primitives.
  ByteSink sink;
  sink.put_u8(0xC1);
  sink.put_uvarint(1);  // id.site
  sink.put_uvarint(1);  // id.seq
  CompressedSv{0, 1}.encode(sink);
  // Hand-rolled: the schema-checked encoder refuses to produce a count
  // past the declared bound, so forge the bytes directly.
  sink.put_uvarint(1);           // one op
  sink.put_u8(1);                // Delete
  sink.put_uvarint(1);           // origin
  sink.put_uvarint(0);           // pos
  sink.put_uvarint(1ull << 60);  // hostile count claim
  EXPECT_THROW(engine::decode_client_msg(sink.bytes(),
                                         engine::StampMode::kCompressed),
               DecodeError);
}

TEST(MessageDecode, LegitimateDeleteRunsStillDecode) {
  // The decode budget must not reject real bursts: a 10k-char delete is
  // comfortably inside the cap.
  engine::ClientMsg msg;
  msg.id = OpId{1, 1};
  msg.ops = ot::make_delete(0, 10'000, 1);
  msg.stamp.csv = CompressedSv{0, 1};
  const auto payload = engine::encode(msg, engine::StampMode::kCompressed);
  const auto decoded =
      engine::decode_client_msg(payload, engine::StampMode::kCompressed);
  EXPECT_EQ(decoded.ops.size(), 10'000u);
}

TEST(MessageDecode, CorruptedOpKindThrows) {
  auto payload =
      engine::encode(sample_client_msg(), engine::StampMode::kCompressed);
  // Layout: tag, site, seq, csv[2], op count, op kind, ...  Clobber the
  // kind byte with a value outside the OpKind enum.
  payload[6] = 0xEE;
  EXPECT_THROW(engine::decode_client_msg(payload,
                                         engine::StampMode::kCompressed),
               DecodeError);
}

TEST(MessageDecode, WrongStampModeIsDetectedOrRejected) {
  // Decoding a compressed-stamp message as full-vector misparses the
  // layout; whatever the bytes happen to say, the decoder must fail
  // (it cannot be *valid* in both modes) rather than read OOB.
  const auto payload =
      engine::encode(sample_client_msg(), engine::StampMode::kCompressed);
  EXPECT_ANY_THROW(
      engine::decode_client_msg(payload, engine::StampMode::kFullVector));
}

}  // namespace
}  // namespace ccvc
