// Unit tests of the paper's §3-§4 machinery: SV maintenance rules,
// eq. (1)-(2) compression, and formulas (4)-(7), including the exact
// numbers of the §5 walkthrough.
#include "clocks/compressed_sv.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace ccvc::clocks {
namespace {

TEST(CompressedSv, PaperIndexingIsOneBased) {
  const CompressedSv sv{3, 7};
  EXPECT_EQ(sv.at(1), 3u);
  EXPECT_EQ(sv.at(2), 7u);
  EXPECT_THROW(sv.at(0), ContractViolation);
  EXPECT_THROW(sv.at(3), ContractViolation);
}

TEST(CompressedSv, WireRoundTripIsTwoSmallVarints) {
  const CompressedSv sv{5, 130};
  util::ByteSink sink;
  sv.encode(sink);
  EXPECT_EQ(sink.size(), 3u);  // 1 byte + 2 bytes
  EXPECT_EQ(sink.size(), sv.encoded_size());
  util::ByteSource src(sink.bytes());
  EXPECT_EQ(CompressedSv::decode(src), sv);
}

TEST(CompressedSv, Render) { EXPECT_EQ((CompressedSv{1, 2}).str(), "[1,2]"); }

TEST(ClientClock, MaintenanceRules) {
  // §3.2: SV_i starts at [0,0]; rule 2 bumps element 1, rule 3 bumps
  // element 2.
  ClientClock c;
  EXPECT_EQ(c.stamp(), (CompressedSv{0, 0}));
  c.on_local_op_executed();
  EXPECT_EQ(c.stamp(), (CompressedSv{0, 1}));
  c.on_center_op_executed();
  c.on_center_op_executed();
  EXPECT_EQ(c.stamp(), (CompressedSv{2, 1}));
}

TEST(NotifierClock, MaintenanceAndCompression) {
  // 3 collaborating sites, as in Fig. 3.
  NotifierClock n(3);
  EXPECT_EQ(n.num_sites(), 3u);
  EXPECT_EQ(n.full().str(), "[0,0,0,0]");  // slot 0 unused

  // §5: after executing O2 from site 2, SV_0 = [0,1,0] (site-indexed).
  n.on_op_from(2);
  EXPECT_EQ(n.from(2), 1u);
  EXPECT_EQ(n.total(), 1u);
  // Eq. (1)-(2): O'2 to site 1 and to site 3 both stamped [1,0].
  EXPECT_EQ(n.stamp_for(1), (CompressedSv{1, 0}));
  EXPECT_EQ(n.stamp_for(3), (CompressedSv{1, 0}));
  // ...and for the (never-used) echo destination 2 it would be [0,1].
  EXPECT_EQ(n.stamp_for(2), (CompressedSv{0, 1}));

  // After executing O1 from site 1: SV_0 = [1,1,0].
  n.on_op_from(1);
  EXPECT_EQ(n.stamp_for(2), (CompressedSv{1, 1}));  // §5: O'1 to site 2
  EXPECT_EQ(n.stamp_for(3), (CompressedSv{2, 0}));  // §5: O'1 to site 3

  // After executing O4 from site 3: SV_0 = [1,1,1].
  n.on_op_from(3);
  EXPECT_EQ(n.stamp_for(1), (CompressedSv{2, 1}));  // §5: O'4 to site 1
  EXPECT_EQ(n.stamp_for(2), (CompressedSv{2, 1}));  // §5: O'4 to site 2

  // After executing O3 from site 2: SV_0 = [1,2,1].
  n.on_op_from(2);
  EXPECT_EQ(n.stamp_for(1), (CompressedSv{3, 1}));  // §5: O'3 to site 1
  EXPECT_EQ(n.stamp_for(3), (CompressedSv{3, 1}));  // §5: O'3 to site 3

  EXPECT_EQ(n.full().str(), "[0,1,2,1]");
  EXPECT_EQ(n.total(), 4u);
}

TEST(NotifierClock, RejectsBadSites) {
  NotifierClock n(3);
  EXPECT_THROW(n.on_op_from(0), ContractViolation);
  EXPECT_THROW(n.on_op_from(4), ContractViolation);
  EXPECT_THROW(n.stamp_for(0), ContractViolation);
}

TEST(NotifierClock, CompressionMatchesNaiveSum) {
  // The O(1) running-sum stamp must equal eq. (1) computed the slow way.
  NotifierClock n(5);
  const SiteId pattern[] = {1, 2, 2, 3, 5, 5, 5, 4, 1, 2};
  for (SiteId s : pattern) {
    n.on_op_from(s);
    for (SiteId dest = 1; dest <= 5; ++dest) {
      const CompressedSv fast = n.stamp_for(dest);
      EXPECT_EQ(fast.from_center, n.full().sum_except(dest));
      EXPECT_EQ(fast.from_site, n.full()[dest]);
    }
  }
}

// --- formulas (4)/(5) at a client -------------------------------------

TEST(ClientCheck, Formula5LocalBufferedOp) {
  // §5: O'2 arrives at site 1 with [1,0]; buffered local O1 has [0,1]:
  // concurrent because T_O1[2] = 1 > T_O'2[2] = 0.
  EXPECT_TRUE(concurrent_at_client(CompressedSv{1, 0}, CompressedSv{0, 1},
                                   HbSource::kLocal));
  // §5: O'1 arrives at site 2 with [1,1]; buffered local O2 has [0,1]:
  // NOT concurrent because T_O2[2] = T_O'1[2] = 1.
  EXPECT_FALSE(concurrent_at_client(CompressedSv{1, 1}, CompressedSv{0, 1},
                                    HbSource::kLocal));
}

TEST(ClientCheck, Formula5CenterBufferedOpNeverConcurrent) {
  // §5 at site 3: O'1 [2,0] vs buffered O'2 [1,0]: not concurrent.
  EXPECT_FALSE(concurrent_at_client(CompressedSv{2, 0}, CompressedSv{1, 0},
                                    HbSource::kFromCenter));
  // FIFO makes T_Ob[1] <= T_Oa[1] for every buffered center op, so the
  // check can never fire for them.
  EXPECT_FALSE(concurrent_at_client(CompressedSv{5, 2}, CompressedSv{5, 1},
                                    HbSource::kFromCenter));
}

TEST(ClientCheck, Formula4AgreesWithFormula5WhenPreconditionHolds) {
  // Formula (4) adds the conjunct T_Oa[1] > T_Ob[1], guaranteed by FIFO
  // for genuinely buffered ops.  Sweep stamps satisfying it and compare.
  for (std::uint64_t oa1 = 0; oa1 < 4; ++oa1) {
    for (std::uint64_t oa2 = 0; oa2 < 4; ++oa2) {
      for (std::uint64_t ob1 = 0; ob1 < oa1; ++ob1) {  // FIFO precondition
        for (std::uint64_t ob2 = 0; ob2 < 4; ++ob2) {
          const CompressedSv ta{oa1, oa2};
          const CompressedSv tb{ob1, ob2};
          EXPECT_EQ(concurrent_at_client_full(ta, tb, HbSource::kLocal),
                    concurrent_at_client(ta, tb, HbSource::kLocal));
        }
      }
    }
  }
}

// --- formulas (6)/(7) at the notifier ----------------------------------

VersionVector vv(std::vector<std::uint64_t> v) {
  return VersionVector(std::move(v));
}

TEST(NotifierCheck, Formula7Section5Cases) {
  // §5, handling O1 (from site 1, stamp [0,1]) against buffered O'2
  // (origin 2, full stamp [0,0,1,0]): concurrent, Σ_{j≠1} = 1 > 0.
  EXPECT_TRUE(concurrent_at_notifier(CompressedSv{0, 1}, 1,
                                     vv({0, 0, 1, 0}), 2));

  // §5, handling O4 (site 3, [1,1]) against O'2 [0,0,1,0]: Σ_{j≠3} = 1
  // == T_O4[1] = 1 -> not concurrent; against O'1 [0,1,1,0]: Σ_{j≠3} = 2
  // > 1 -> concurrent.
  EXPECT_FALSE(concurrent_at_notifier(CompressedSv{1, 1}, 3,
                                      vv({0, 0, 1, 0}), 2));
  EXPECT_TRUE(concurrent_at_notifier(CompressedSv{1, 1}, 3,
                                     vv({0, 1, 1, 0}), 1));

  // §5, handling O3 (site 2, [1,2]): against O'2 (origin 2): same site ->
  // not concurrent; against O'1 [0,1,1,0]: Σ_{j≠2} = 1 == 1 -> not;
  // against O'4 [0,1,1,1]: Σ_{j≠2} = 2 > 1 -> concurrent.
  EXPECT_FALSE(concurrent_at_notifier(CompressedSv{1, 2}, 2,
                                      vv({0, 0, 1, 0}), 2));
  EXPECT_FALSE(concurrent_at_notifier(CompressedSv{1, 2}, 2,
                                      vv({0, 1, 1, 0}), 1));
  EXPECT_TRUE(concurrent_at_notifier(CompressedSv{1, 2}, 2,
                                     vv({0, 1, 1, 1}), 3));
}

TEST(NotifierCheck, O1VariantMatchesVectorVariant) {
  for (std::uint64_t a = 0; a < 3; ++a) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      for (std::uint64_t c = 0; c < 3; ++c) {
        const VersionVector full = vv({0, a, b, c});
        for (SiteId x = 1; x <= 3; ++x) {
          for (SiteId y = 1; y <= 3; ++y) {
            for (std::uint64_t t1 = 0; t1 < 4; ++t1) {
              const CompressedSv ta{t1, 1};
              EXPECT_EQ(concurrent_at_notifier(ta, x, full, y),
                        concurrent_at_notifier_o1(ta, x, full.sum(), full[x],
                                                  y));
            }
          }
        }
      }
    }
  }
}

TEST(NotifierCheck, Formula6AgreesWithFormula7WhenPreconditionsHold) {
  // Formula (6)'s extra conjunct T_Oa[2] > T_Ob[x] is guaranteed by FIFO
  // (the notifier has not yet counted Oa).  With that imposed, and x ≠ y
  // (same-site is FIFO-ordered), (6) reduces to (7).
  for (std::uint64_t a = 0; a < 3; ++a) {
    for (std::uint64_t b = 0; b < 3; ++b) {
      for (std::uint64_t c = 0; c < 3; ++c) {
        const VersionVector full = vv({0, a, b, c});
        for (SiteId x = 1; x <= 3; ++x) {
          for (SiteId y = 1; y <= 3; ++y) {
            if (x == y) continue;
            for (std::uint64_t t1 = 0; t1 < 4; ++t1) {
              const CompressedSv ta{t1, full[x] + 1};  // precondition
              EXPECT_EQ(concurrent_at_notifier_full(ta, x, full, y),
                        concurrent_at_notifier(ta, x, full, y))
                  << "x=" << x << " y=" << y << " full=" << full.str()
                  << " ta=" << ta.str();
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ccvc::clocks
