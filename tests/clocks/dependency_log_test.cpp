// Fowler–Zwaenepoel offline dependency tracking: reconstruction must
// agree exactly with an on-line full-vector-clock run over the same
// event sequence.
#include "clocks/dependency_log.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccvc::clocks {
namespace {

TEST(DependencyLog, LocalChainOnly) {
  DependencyTracker t(2);
  const EventId a = t.local_event(0);
  const EventId b = t.local_event(0);
  const EventId c = t.local_event(1);
  EXPECT_TRUE(t.happened_before(a, b));
  EXPECT_FALSE(t.happened_before(b, a));
  EXPECT_TRUE(t.concurrent(a, c));
  EXPECT_EQ(t.reconstruct(b),
            VersionVector(std::vector<std::uint64_t>{2, 0}));
}

TEST(DependencyLog, MessageCreatesCrossDependency) {
  DependencyTracker t(3);
  const EventId send = t.local_event(0);
  const EventId recv = t.receive_event(1, send);
  const EventId after = t.local_event(1);
  EXPECT_TRUE(t.happened_before(send, recv));
  EXPECT_TRUE(t.happened_before(send, after));
  EXPECT_FALSE(t.happened_before(after, send));
  EXPECT_EQ(t.reconstruct(after),
            VersionVector(std::vector<std::uint64_t>{1, 2, 0}));
}

TEST(DependencyLog, TransitivityThroughRelay) {
  // 0 -> 1 -> 2: process 2 depends on 0's event only transitively.
  DependencyTracker t(3);
  const EventId s0 = t.local_event(0);
  t.receive_event(1, s0);
  const EventId s1 = t.local_event(1);
  const EventId r2 = t.receive_event(2, s1);
  EXPECT_TRUE(t.happened_before(s0, r2));
  EXPECT_EQ(t.reconstruct(r2),
            VersionVector(std::vector<std::uint64_t>{1, 2, 1}));
}

TEST(DependencyLog, SelfIsNotItsOwnPredecessor) {
  DependencyTracker t(1);
  const EventId e = t.local_event(0);
  EXPECT_FALSE(t.happened_before(e, e));
  EXPECT_FALSE(t.concurrent(e, e));
}

TEST(DependencyLog, UnknownReceiveReferenceThrows) {
  DependencyTracker t(2);
  EXPECT_THROW(t.receive_event(0, EventId{1, 5}), ContractViolation);
}

TEST(DependencyLog, LogSizeCountsEverything) {
  DependencyTracker t(2);
  const EventId s = t.local_event(0);
  t.local_event(0);
  t.receive_event(1, s);
  EXPECT_EQ(t.log_size(), 3u);
}

class FzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FzSweep, ReconstructionMatchesOnlineVectorClocks) {
  // Random FIFO-less message pattern (FZ needs no FIFO): compare every
  // event's reconstructed vector time against a parallel on-line
  // full-vector protocol.
  util::Rng rng(GetParam());
  const std::size_t n = 5;
  DependencyTracker tracker(n);

  std::vector<VersionVector> clock(n, VersionVector(n));
  struct Sent {
    EventId id;
    VersionVector stamp;
  };
  std::deque<Sent> in_flight;
  std::vector<std::pair<EventId, VersionVector>> all_events;

  for (int step = 0; step < 400; ++step) {
    const auto p = static_cast<SiteId>(rng.index(n));
    if (!in_flight.empty() && rng.chance(0.4)) {
      const std::size_t k = rng.index(in_flight.size());
      const Sent msg = in_flight[k];
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(k));
      const EventId e = tracker.receive_event(p, msg.id);
      clock[p].merge(msg.stamp);
      clock[p].tick(p);
      all_events.emplace_back(e, clock[p]);
    } else {
      const EventId e = tracker.local_event(p);
      clock[p].tick(p);
      all_events.emplace_back(e, clock[p]);
      if (rng.chance(0.7)) in_flight.push_back(Sent{e, clock[p]});
    }
  }

  for (std::size_t i = 0; i < all_events.size(); i += 3) {
    ASSERT_EQ(tracker.reconstruct(all_events[i].first),
              all_events[i].second)
        << "event " << i;
  }
  // Pairwise relations agree with vector-clock comparison.
  for (std::size_t i = 0; i < all_events.size(); i += 17) {
    for (std::size_t j = 0; j < all_events.size(); j += 13) {
      if (i == j) continue;
      const bool fz =
          tracker.happened_before(all_events[i].first, all_events[j].first);
      const bool vc =
          all_events[i].second.happened_before(all_events[j].second);
      ASSERT_EQ(fz, vc) << i << " vs " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FzSweep,
                         ::testing::Values(3u, 14u, 159u, 2653u));

}  // namespace
}  // namespace ccvc::clocks
