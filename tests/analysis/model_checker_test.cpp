// Tests for the bounded model checker (src/analysis/explorer.hpp).
//
// Three layers of assurance:
//   * clean configurations verify violation-free, with the partial-order
//     reduction measurably pruning the naive schedule tree;
//   * the §6 ablation and every single-token formula mutation yield a
//     counterexample — the checker can fail, so its passes mean
//     something;
//   * every counterexample serialises to the scenario DSL and replays
//     the same violation through sim::run_script, outside the checker.
#include "analysis/explorer.hpp"

#include <gtest/gtest.h>

#include <string>

#include "clocks/compressed_sv.hpp"
#include "sim/script.hpp"

namespace ccvc::analysis {
namespace {

using clocks::FormulaMutation;

constexpr FormulaMutation kAllMutations[] = {
    FormulaMutation::kF4GeqSecond, FormulaMutation::kF5Geq,
    FormulaMutation::kF6GeqSum, FormulaMutation::kF7Geq,
    FormulaMutation::kF7DropOrigin};

TEST(ModelChecker, ExhaustiveTwoSitesTwoOpsIsClean) {
  const McConfig cfg = exhaustive_config(2, 2);
  const McResult result = explore(cfg);
  EXPECT_FALSE(result.violation_found());
  // Deterministic exploration: these counts are stable for a fixed
  // config (update deliberately if the canonical order changes).
  EXPECT_EQ(result.stats.states, 26u);
  EXPECT_EQ(result.stats.terminals, 4u);
  EXPECT_EQ(result.stats.transitions, result.stats.states - 1);
  EXPECT_GT(result.stats.sleep_prunes, 0u);
}

TEST(ModelChecker, ExhaustiveThreeSitesThreeOpsIsClean) {
  const McResult result = explore(exhaustive_config(3, 3));
  EXPECT_FALSE(result.violation_found());
  EXPECT_EQ(result.stats.terminals, 36u);
  EXPECT_GT(result.stats.states, 500u);
  EXPECT_GT(result.stats.sleep_prunes, 0u);
  // The reductions must cut a substantial share of the branch slots.
  EXPECT_GT(result.stats.reduction_ratio(), 0.3);
}

TEST(ModelChecker, SleepSetsReduceTheNaiveTree) {
  McConfig naive = exhaustive_config(2, 2);
  naive.sleep_sets = false;
  naive.state_cache = false;
  const McResult full = explore(naive);
  const McResult reduced = explore(exhaustive_config(2, 2));
  EXPECT_FALSE(full.violation_found());
  EXPECT_FALSE(reduced.violation_found());
  EXPECT_EQ(full.stats.sleep_prunes, 0u);
  EXPECT_EQ(full.stats.cache_hits, 0u);
  // Same verdict, strictly less work.
  EXPECT_GT(full.stats.replays, reduced.stats.replays);
  EXPECT_GT(full.stats.transitions, reduced.stats.transitions);
  EXPECT_GE(full.stats.terminals, reduced.stats.terminals);
}

TEST(ModelChecker, StateCacheAloneDeduplicatesConvergingSchedules) {
  McConfig cfg = exhaustive_config(2, 2);
  cfg.sleep_sets = false;  // leave only the visited set
  const McResult result = explore(cfg);
  EXPECT_FALSE(result.violation_found());
  EXPECT_GT(result.stats.cache_hits, 0u);
  // Distinct protocol states are a property of the config, not of the
  // reduction that enumerates them.
  McConfig naive = exhaustive_config(2, 2);
  naive.sleep_sets = false;
  naive.state_cache = false;
  EXPECT_GE(explore(naive).stats.states, result.stats.states);
}

TEST(ModelChecker, AblationFindsReplayableViolation) {
  const McConfig cfg = ablation_config();
  const McResult result = explore(cfg);
  ASSERT_TRUE(result.violation_found());
  EXPECT_FALSE(result.counterexample->schedule.empty());
  const std::string scenario = to_scenario(cfg, *result.counterexample);
  EXPECT_NE(scenario.find("no-transform"), std::string::npos);
  EXPECT_NE(scenario.find("expect-violation"), std::string::npos);
  const sim::ScriptResult replay = sim::run_script(scenario);
  EXPECT_TRUE(replay.passed) << scenario;
}

TEST(ModelChecker, EveryFormulaMutationYieldsReplayableCounterexample) {
  for (const FormulaMutation m : kAllMutations) {
    const McConfig cfg = mutation_probe_config(m);
    const McResult result = explore(cfg);
    ASSERT_TRUE(result.violation_found()) << clocks::to_string(m);
    const std::string scenario = to_scenario(cfg, *result.counterexample);
    const sim::ScriptResult replay = sim::run_script(scenario);
    EXPECT_TRUE(replay.passed) << clocks::to_string(m) << "\n" << scenario;
  }
}

TEST(ModelChecker, ProbeConfigIsCleanWithoutAMutation) {
  // The mutation suite's probe must owe its counterexamples to the
  // mutation, not to the configuration.
  const McResult result =
      explore(mutation_probe_config(FormulaMutation::kNone));
  EXPECT_FALSE(result.violation_found());
}

TEST(ModelChecker, CounterexamplesAreDeterministic) {
  const McConfig cfg = mutation_probe_config(FormulaMutation::kF5Geq);
  const McResult a = explore(cfg);
  const McResult b = explore(cfg);
  ASSERT_TRUE(a.violation_found());
  ASSERT_TRUE(b.violation_found());
  EXPECT_EQ(a.counterexample->kind, b.counterexample->kind);
  EXPECT_EQ(a.counterexample->schedule, b.counterexample->schedule);
  EXPECT_EQ(a.counterexample->description, b.counterexample->description);
  EXPECT_EQ(a.stats.states, b.stats.states);
}

TEST(ModelChecker, TransitionAndViolationNamesMatchTheDsl) {
  EXPECT_EQ(to_string(Transition{TransitionKind::kGen, 2}), "gen 2");
  EXPECT_EQ(to_string(Transition{TransitionKind::kDeliverUp, 1}), "up 1");
  EXPECT_EQ(to_string(Transition{TransitionKind::kDeliverDown, 3}), "down 3");
  EXPECT_EQ(to_string(ViolationKind::kEquivalence), "equivalence");
  EXPECT_EQ(to_string(ViolationKind::kOracle), "oracle");
  EXPECT_EQ(to_string(ViolationKind::kDivergence), "divergence");
  EXPECT_EQ(to_string(ViolationKind::kIntention), "intention");
}

}  // namespace
}  // namespace ccvc::analysis
