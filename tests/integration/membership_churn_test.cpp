// Membership churn under live traffic: sites join (with snapshots) and
// leave at random while everyone types.  Active replicas must always
// converge and the compressed verdicts must stay sound.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace ccvc::sim {
namespace {

class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, JoinsAndLeavesUnderTraffic) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);

  engine::StarSessionConfig cfg;
  cfg.num_sites = 3;
  cfg.initial_doc = "churning membership";
  cfg.engine.gc_history = true;
  cfg.uplink = net::LatencyModel::lognormal(30.0, 0.5, 10.0);
  cfg.downlink = net::LatencyModel::lognormal(30.0, 0.5, 10.0);
  cfg.seed = seed;

  ObserverMux mux;
  // Capacity: 3 initial + up to 8 joins.
  CausalityOracle oracle(11);
  mux.add(&oracle);
  engine::StarSession s(cfg, &mux);

  // Initial typing load on the founders.
  WorkloadConfig w;
  w.ops_per_site = 25;
  w.mean_think_ms = 20.0;
  w.hotspot_prob = 0.3;
  w.seed = seed + 1;
  StarWorkload workload(s, w);
  workload.start();

  // Churn: at staggered times, join a site (which immediately types) or
  // depart a random active one (never all of them).
  std::vector<SiteId> active{1, 2, 3};
  util::Rng churn_rng = rng.fork();
  for (int round = 0; round < 8; ++round) {
    const double when = 40.0 * (round + 1);
    s.queue().schedule_at(when, [&s, &active, &churn_rng] {
      if (active.size() > 2 && churn_rng.chance(0.4)) {
        const std::size_t k = churn_rng.index(active.size());
        s.remove_client(active[k]);
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const SiteId j = s.add_client();
        active.push_back(j);
        const std::size_t pos =
            churn_rng.index(s.client(j).document().size() + 1);
        s.client(j).insert(pos, "[joined]");
      }
    });
  }

  s.run_to_quiescence();
  EXPECT_TRUE(s.converged()) << "seed " << seed;
  EXPECT_EQ(oracle.verdict_mismatches(), 0u) << "seed " << seed;
  EXPECT_GT(oracle.verdicts_checked(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u, 60u));

}  // namespace
}  // namespace ccvc::sim
