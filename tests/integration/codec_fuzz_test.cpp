// Decoder robustness: arbitrary bytes fed to the wire decoders must
// either parse or fail with a typed error (DecodeError /
// ContractViolation) — never crash, hang, or allocate absurdly.  A
// notifier on the open Internet (the paper's deployment!) cannot trust
// its peers' bytes.
#include <gtest/gtest.h>

#include "engine/mesh_site.hpp"
#include "engine/message.hpp"
#include "engine/reliable_link.hpp"
#include "util/rng.hpp"

namespace ccvc::engine {
namespace {

net::Payload random_bytes(util::Rng& rng, std::size_t max_len) {
  net::Payload p(rng.index(max_len + 1));
  for (auto& b : p) b = static_cast<std::uint8_t>(rng.below(256));
  return p;
}

template <typename DecodeFn>
void fuzz(DecodeFn&& decode, std::uint64_t seed) {
  util::Rng rng(seed);
  int parsed = 0;
  for (int i = 0; i < 20000; ++i) {
    const net::Payload bytes = random_bytes(rng, 64);
    try {
      decode(bytes);
      ++parsed;
    } catch (const util::DecodeError&) {
    } catch (const ContractViolation&) {
    }
  }
  // Random bytes almost never parse; the point is no *other* outcome.
  EXPECT_LT(parsed, 200);
}

TEST(CodecFuzz, ClientMsgCompressed) {
  fuzz([](const net::Payload& b) {
    (void)decode_client_msg(b, StampMode::kCompressed);
  }, 1);
}

TEST(CodecFuzz, ClientMsgFullVector) {
  fuzz([](const net::Payload& b) {
    (void)decode_client_msg(b, StampMode::kFullVector);
  }, 2);
}

TEST(CodecFuzz, CenterMsg) {
  fuzz([](const net::Payload& b) {
    (void)decode_center_msg(b, StampMode::kCompressed);
  }, 3);
}

TEST(CodecFuzz, MeshMsgBothModes) {
  fuzz([](const net::Payload& b) {
    (void)decode_mesh_msg(b, MeshStamp::kFullVector);
  }, 4);
  fuzz([](const net::Payload& b) {
    (void)decode_mesh_msg(b, MeshStamp::kSkDiff);
  }, 5);
}

TEST(CodecFuzz, ReliabilityFrames) {
  // The frame decoder is the outermost parser on a faulty channel —
  // it sees corrupted bytes *by design* (the fault model flips bits).
  // The CRC makes random bytes essentially unparseable: a 32-bit check
  // over random input passes with probability 2^-32.
  util::Rng rng(6);
  int parsed = 0;
  for (int i = 0; i < 20000; ++i) {
    const net::Payload bytes = random_bytes(rng, 64);
    try {
      (void)decode_frame(bytes);
      ++parsed;
    } catch (const util::DecodeError&) {
    }
  }
  EXPECT_EQ(parsed, 0);
}

TEST(CodecFuzz, CorruptedFramesAreRejectedNotMisparsed) {
  // Single-byte corruption — exactly what the fault injector applies —
  // must always be rejected: a ≤ 8-bit burst is within CRC-32's
  // guaranteed detection range, so acceptance would be a codec bug.
  Frame f;
  f.kind = Frame::Kind::kData;
  f.seq = 900;
  f.ack = 77;
  f.payload = {0xC1, 0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  const net::Payload wire = encode_frame(f);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      net::Payload mutated = wire;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_THROW((void)decode_frame(mutated), util::DecodeError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(CodecFuzz, TruncatedRealMessagesFail) {
  // Every strict prefix of a real message must raise, not mis-parse:
  // the codecs length-check and the decoders demand exhaustion.
  ClientMsg msg;
  msg.id = OpId{3, 9};
  msg.ops = ot::make_insert(4, "payload", 3);
  msg.stamp.csv = clocks::CompressedSv{7, 9};
  const net::Payload full = encode(msg, StampMode::kCompressed);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    net::Payload prefix(full.begin(),
                        full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_ANY_THROW(
        (void)decode_client_msg(prefix, StampMode::kCompressed))
        << "prefix length " << cut;
  }
}

TEST(CodecFuzz, BitFlippedMessagesNeverCrash) {
  ClientMsg msg;
  msg.id = OpId{2, 5};
  msg.ops = ot::make_delete(1, 3, 2);
  msg.stamp.csv = clocks::CompressedSv{4, 5};
  const net::Payload full = encode(msg, StampMode::kCompressed);
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      net::Payload mutated = full;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        (void)decode_client_msg(mutated, StampMode::kCompressed);
      } catch (const util::DecodeError&) {
      } catch (const ContractViolation&) {
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ccvc::engine
