// The observability tentpole's load-bearing property: every metric is an
// integer derived from simulated state, so a seeded run — even a chaos
// run with faults, crashes, and recovery — produces a byte-identical
// metrics snapshot every time.  This is what lets BENCH_results.json
// treat the scraped registry as a pure function of the seed, and what
// makes a metric diff between two commits a behaviour diff, not noise.
#include <gtest/gtest.h>

#include <string>

#include "sim/chaos.hpp"
#include "sim/runner.hpp"
#include "util/metrics.hpp"

namespace ccvc::sim {
namespace {

ChaosConfig chaos_config() {
  ChaosConfig cfg;
  cfg.num_sites = 4;
  cfg.uplink_faults.drop_prob = 0.05;
  cfg.uplink_faults.dup_prob = 0.02;
  cfg.uplink_faults.corrupt_prob = 0.02;
  cfg.downlink_faults = cfg.uplink_faults;
  cfg.checkpoint_every_ms = 300.0;
  cfg.crash_notifier_at_ms = 500.0;
  cfg.restart_client_at_ms = 650.0;
  cfg.restart_site = 2;
  cfg.workload.ops_per_site = 15;
  cfg.seed = 0xfeed;
  return cfg;
}

TEST(MetricsDeterminism, SeededChaosRunSnapshotsAreByteIdentical) {
  util::metrics::reset();
  const ChaosReport first_report = run_chaos(chaos_config());
  const std::string first = util::metrics::snapshot_text();

  util::metrics::reset();
  const ChaosReport second_report = run_chaos(chaos_config());
  const std::string second = util::metrics::snapshot_text();

  ASSERT_TRUE(first_report.completed);
  ASSERT_TRUE(first_report.converged);
  EXPECT_EQ(first_report.final_doc, second_report.final_doc);
  EXPECT_EQ(first, second);

  // The run exercised the instrumented paths, not a trivially empty
  // registry: faults were injected and healed, and the crash replayed.
  EXPECT_NE(first.find("link.retransmits"), std::string::npos);
  EXPECT_NE(first.find("session.recovery.wal_replayed"), std::string::npos);
  EXPECT_NE(first.find("net.channel.drops.fault"), std::string::npos);
}

TEST(MetricsDeterminism, SeededStarRunSnapshotsAreByteIdentical) {
  engine::StarSessionConfig cfg;
  cfg.num_sites = 4;
  cfg.initial_doc = "deterministic observability";
  cfg.engine.gc_history = true;
  cfg.seed = 4242;
  WorkloadConfig w;
  w.ops_per_site = 25;
  w.hotspot_prob = 0.4;
  w.seed = 8484;

  util::metrics::reset();
  run_star(cfg, w);
  const std::string first = util::metrics::snapshot_text();
  util::metrics::reset();
  run_star(cfg, w);
  EXPECT_EQ(first, util::metrics::snapshot_text());
}

}  // namespace
}  // namespace ccvc::sim
