// E7 — randomized end-to-end sessions: convergence, intention capture,
// and formula/control fidelity (check_fidelity is on, so any
// disagreement between the paper's checking scheme and the
// transformation control aborts the run) across N, latency models, and
// workload shapes.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/runner.hpp"

namespace ccvc::sim {
namespace {

class ConvergenceSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t /*sites*/, std::uint64_t /*seed*/>> {};

TEST_P(ConvergenceSweep, RandomSessionsConverge) {
  const auto [sites, seed] = GetParam();

  engine::StarSessionConfig scfg;
  scfg.num_sites = sites;
  scfg.initial_doc = "The quick brown fox jumps over the lazy dog.";
  scfg.uplink = net::LatencyModel::lognormal(40.0, 0.6, 10.0);
  scfg.downlink = net::LatencyModel::lognormal(40.0, 0.6, 10.0);
  scfg.seed = seed;

  WorkloadConfig wcfg;
  wcfg.ops_per_site = 40;
  wcfg.mean_think_ms = 25.0;  // think << RTT: heavy concurrency
  wcfg.hotspot_prob = 0.5;
  wcfg.hotspot_width = 10;
  wcfg.seed = seed * 1009 + 7;

  const StarRunReport r = run_star(scfg, wcfg);
  EXPECT_TRUE(r.converged) << "final doc: " << r.final_doc;
  EXPECT_EQ(r.ops_generated, sites * 40u);
  EXPECT_EQ(r.verdict_mismatches, 0u);
  EXPECT_GT(r.concurrent_verdicts, 0u);  // the workload really conflicts
}

INSTANTIATE_TEST_SUITE_P(
    SitesAndSeeds, ConvergenceSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{5}, std::size_t{8}),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Convergence, DeleteHeavyWorkload) {
  engine::StarSessionConfig scfg;
  scfg.num_sites = 4;
  scfg.initial_doc = std::string(200, 'x');
  scfg.seed = 11;
  WorkloadConfig wcfg;
  wcfg.ops_per_site = 60;
  wcfg.insert_prob = 0.3;  // deletes dominate
  wcfg.max_delete_len = 12;
  wcfg.mean_think_ms = 10.0;
  wcfg.seed = 13;
  const StarRunReport r = run_star(scfg, wcfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
}

TEST(Convergence, EmptyInitialDocument) {
  engine::StarSessionConfig scfg;
  scfg.num_sites = 3;
  scfg.seed = 21;
  WorkloadConfig wcfg;
  wcfg.ops_per_site = 30;
  wcfg.mean_think_ms = 15.0;
  wcfg.seed = 23;
  const StarRunReport r = run_star(scfg, wcfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
}

TEST(Convergence, ExtremeJitterStillFifo) {
  engine::StarSessionConfig scfg;
  scfg.num_sites = 4;
  scfg.initial_doc = "seed text";
  scfg.uplink = net::LatencyModel::uniform(1.0, 500.0);
  scfg.downlink = net::LatencyModel::uniform(1.0, 500.0);
  scfg.seed = 31;
  WorkloadConfig wcfg;
  wcfg.ops_per_site = 40;
  wcfg.mean_think_ms = 20.0;
  wcfg.seed = 33;
  const StarRunReport r = run_star(scfg, wcfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
}

TEST(Convergence, LargeSessionSixteenSites) {
  engine::StarSessionConfig scfg;
  scfg.num_sites = 16;
  scfg.initial_doc = "shared whiteboard";
  scfg.seed = 41;
  WorkloadConfig wcfg;
  wcfg.ops_per_site = 15;
  wcfg.mean_think_ms = 30.0;
  wcfg.hotspot_prob = 0.3;
  wcfg.seed = 43;
  const StarRunReport r = run_star(scfg, wcfg);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
  // Constant-size stamps regardless of the 16 sites.
  EXPECT_LE(r.max_stamp_bytes, 4.0);
}

TEST(Convergence, PropagationLatencyIsRoughlyTwoHops) {
  engine::StarSessionConfig scfg;
  scfg.num_sites = 3;
  scfg.initial_doc = "abc";
  scfg.uplink = net::LatencyModel::fixed(25.0);
  scfg.downlink = net::LatencyModel::fixed(25.0);
  scfg.seed = 51;
  WorkloadConfig wcfg;
  wcfg.ops_per_site = 20;
  wcfg.mean_think_ms = 200.0;  // light load: no queueing
  wcfg.seed = 53;
  const StarRunReport r = run_star(scfg, wcfg);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.propagation_p50_ms, 50.0, 1.0);  // uplink + downlink
}

}  // namespace
}  // namespace ccvc::sim
