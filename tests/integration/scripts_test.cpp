// Scenario-script corpus: the paper's schedules and a set of regression
// puzzles expressed as data.
#include <gtest/gtest.h>

#include "sim/script.hpp"

namespace ccvc::sim {
namespace {

void expect_script_ok(const std::string& script) {
  const ScriptResult r = run_script(script);
  for (const auto& f : r.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(r.passed);
}

TEST(Scripts, Section22Example) {
  expect_script_ok(R"(
    # The paper's motivating example (§2.2)
    sites 3
    doc ABCDE
    latency 10
    at 0 site 2 delete 2 3
    at 5 site 1 insert 1 12
    run
    expect-converged
    expect-doc A12B
  )");
}

TEST(Scripts, Fig3FullSchedule) {
  expect_script_ok(R"(
    sites 3
    doc ABCDE
    latency 10
    at 0  site 2 delete 2 3
    at 5  site 1 insert 1 12
    at 22 site 3 insert 1 y
    at 27 site 2 insert 4 x
    run
    expect-converged
    expect-doc A12yBx
  )");
}

TEST(Scripts, Fig2AblationDiverges) {
  expect_script_ok(R"(
    sites 3
    doc ABCDE
    latency 10
    no-transform
    at 0  site 2 delete 2 3
    at 5  site 1 insert 1 12
    at 22 site 3 insert 1 y
    at 27 site 2 insert 4 x
    run
    expect-diverged
    expect-doc-at 1 Ay1DxE
  )");
}

TEST(Scripts, CrossingInsertsTieBreak) {
  expect_script_ok(R"(
    sites 2
    doc HELLO
    latency 10
    at 0 site 1 insert 2 aa
    at 0 site 2 insert 2 bb
    run
    expect-converged
    expect-doc HEaabbLLO
  )");
}

TEST(Scripts, JoinAndLeaveMidSession) {
  expect_script_ok(R"(
    sites 2
    doc seed
    latency 5
    at 0   site 1 insert 4  one
    at 50  join
    at 100 site 3 insert 0 three:
    at 150 leave 2
    at 200 site 1 insert 0 !
    run
    expect-converged
    expect-doc !three:seedone
  )");
}

TEST(Scripts, InsertWithSpacesInPayload) {
  expect_script_ok(R"(
    sites 2
    doc XY
    at 0 site 1 insert 1 hello world
    run
    expect-converged
    expect-doc Xhello worldY
  )");
}

TEST(Scripts, EmptyInitialDoc) {
  expect_script_ok(R"(
    sites 2
    at 0 site 1 insert 0 a
    at 0 site 2 insert 0 b
    run
    expect-converged
    expect-doc ab
  )");
}

TEST(Scripts, ChaosPartitionScenario) {
  // Mirrors scenarios/chaos_partition.txt: lossy/duplicating/corrupting
  // channels, a partitioned client, and a notifier crash — the
  // reliability sublayer heals all of it.
  const ScriptResult r = run_script(R"(
    sites 3
    doc abcdef
    latency 20
    reliable
    fault drop 0.15
    fault dup 0.05
    fault corrupt 0.03
    at 0   site 1 insert 0 X
    at 10  site 2 insert 6 Y
    at 30  down 2
    at 40  site 3 insert 3 Z
    at 60  site 2 insert 0 W
    at 200 up 2
    at 300 crash-center
    run
    expect-converged
  )");
  for (const auto& f : r.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(r.passed);
  // The faults were real.
  EXPECT_GT(r.session->network().total_fault_stats().injected() +
                r.session->network().total_fault_stats().dropped_down,
            0u);
  EXPECT_EQ(r.session->notifier_crashes(), 1u);
}

TEST(Scripts, FaultStatementsRequireReliable) {
  EXPECT_THROW(run_script("fault drop 0.5"), ScriptError);
  EXPECT_THROW(run_script("reliable\nfault warp 0.5"), ScriptError);
  EXPECT_THROW(run_script("reliable\nfault drop 1.5"), ScriptError);
}

TEST(Scripts, FailedExpectationIsReportedNotThrown) {
  const ScriptResult r = run_script(R"(
    sites 2
    doc AB
    at 0 site 1 insert 0 x
    run
    expect-doc WRONG
  )");
  EXPECT_FALSE(r.passed);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("expected \"WRONG\""), std::string::npos);
}

TEST(Scripts, MalformedScriptsThrow) {
  EXPECT_THROW(run_script("bogus-statement"), ScriptError);
  EXPECT_THROW(run_script("sites"), ScriptError);
  EXPECT_THROW(run_script("at x site 1 insert 0 t"), ScriptError);
  EXPECT_THROW(run_script("at 0 site 1 insert 0"), ScriptError);
  EXPECT_THROW(run_script("at 0 site 1 explode 0 1"), ScriptError);
}

TEST(Scripts, ImplicitRunBeforeExpect) {
  expect_script_ok(R"(
    sites 2
    doc AB
    at 0 site 1 insert 2 C
    expect-converged
    expect-doc ABC
  )");
}

}  // namespace
}  // namespace ccvc::sim
