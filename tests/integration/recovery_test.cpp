// Crash/recovery integration: checkpoint-under-concurrency (a notifier
// swapped out mid-flight must be transparent), notifier crash-restart
// from the durable checkpoint + write-ahead log, client disconnect/
// reconnect outages, and client crash-restart resync — each validated
// for convergence and oracle-clean causality verdicts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/session.hpp"
#include "engine/snapshot.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/workload.hpp"

namespace ccvc::sim {
namespace {

engine::StarSessionConfig base_cfg(std::uint64_t seed, bool reliable) {
  engine::StarSessionConfig cfg;
  cfg.num_sites = 4;
  cfg.initial_doc = "recovery must not lose a single keystroke";
  cfg.uplink = net::LatencyModel::uniform(10.0, 120.0);
  cfg.downlink = net::LatencyModel::uniform(10.0, 120.0);
  cfg.reliability.enabled = reliable;
  cfg.seed = seed;
  return cfg;
}

WorkloadConfig base_workload(std::uint64_t seed) {
  WorkloadConfig w;
  w.ops_per_site = 25;
  w.mean_think_ms = 20.0;
  w.hotspot_prob = 0.4;
  w.seed = seed;
  return w;
}

// --- satellite: checkpoint under concurrency -------------------------

std::vector<std::string> run_with_restores(
    std::uint64_t seed, const std::vector<double>& restore_at,
    bool reliable) {
  engine::StarSession session(base_cfg(seed, reliable));
  StarWorkload workload(session, base_workload(seed + 1));
  workload.start();
  for (const double t : restore_at) {
    session.queue().run_until(t);
    // The interesting case: traffic is genuinely in transit.
    EXPECT_GT(session.queue().pending(), 0u) << "restore at " << t;
    const net::Payload ckpt = engine::save_checkpoint(session.notifier());
    session.restore_notifier(ckpt);
  }
  session.run_to_quiescence();
  EXPECT_TRUE(session.converged()) << seed;
  return session.documents();
}

TEST(CheckpointUnderConcurrency, MidFlightRestoreIsTransparent) {
  // A notifier checkpointed with ops in transit on several channels and
  // immediately swapped for its restored twin must produce the exact
  // run an uninterrupted notifier produces — the state-completeness
  // property of the snapshot machinery, now tested mid-stream.
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const auto uninterrupted = run_with_restores(seed, {}, false);
    const auto restored_once = run_with_restores(seed, {150.0}, false);
    const auto restored_twice =
        run_with_restores(seed, {100.0, 400.0}, false);
    EXPECT_EQ(uninterrupted, restored_once) << seed;
    EXPECT_EQ(uninterrupted, restored_twice) << seed;
  }
}

TEST(CheckpointUnderConcurrency, TransparentUnderReliabilityLayerToo) {
  for (const std::uint64_t seed : {44u, 55u}) {
    const auto uninterrupted = run_with_restores(seed, {}, true);
    const auto restored = run_with_restores(seed, {200.0}, true);
    EXPECT_EQ(uninterrupted, restored) << seed;
  }
}

// --- notifier crash-restart ------------------------------------------

TEST(NotifierCrashRestart, RecoversFromCheckpointPlusLogReplay) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    ObserverMux mux;
    CausalityOracle oracle(4, true);
    mux.add(&oracle);
    engine::StarSession session(base_cfg(seed, true), &mux);
    StarWorkload workload(session, base_workload(seed + 9));
    workload.start();

    // A mid-run durable checkpoint, more traffic, then the crash: the
    // recovery replays a *partial* log on top of a non-initial state.
    session.queue().run_until(120.0);
    session.checkpoint_notifier();
    session.queue().run_until(300.0);
    EXPECT_GT(session.wal_size(), 0u) << seed;
    session.crash_notifier();
    session.run_to_quiescence();

    EXPECT_TRUE(session.converged()) << seed;
    EXPECT_EQ(oracle.verdict_mismatches(), 0u) << seed;
    EXPECT_EQ(session.notifier_crashes(), 1u);
    EXPECT_GT(session.link_stats().retransmits, 0u) << seed;
  }
}

TEST(NotifierCrashRestart, SurvivesASecondCrash) {
  // The log is not truncated by recovery itself (only by a new durable
  // checkpoint), so an immediate second crash must replay again.
  ObserverMux mux;
  CausalityOracle oracle(4, true);
  mux.add(&oracle);
  engine::StarSession session(base_cfg(7, true), &mux);
  StarWorkload workload(session, base_workload(70));
  workload.start();

  session.queue().run_until(200.0);
  session.crash_notifier();
  session.queue().run_until(350.0);
  session.crash_notifier();
  session.run_to_quiescence();

  EXPECT_TRUE(session.converged());
  EXPECT_EQ(oracle.verdict_mismatches(), 0u);
  EXPECT_EQ(session.notifier_crashes(), 2u);
}

// --- client outages and crash-restart --------------------------------

TEST(ClientOutage, DisconnectReconnectHealsThroughRetransmission) {
  for (const std::uint64_t seed : {5u, 6u}) {
    ObserverMux mux;
    CausalityOracle oracle(4, true);
    mux.add(&oracle);
    engine::StarSession session(base_cfg(seed, true), &mux);
    StarWorkload workload(session, base_workload(seed + 40));
    workload.start();

    session.queue().schedule_at(100.0,
                                [&session] { session.disconnect_client(2); });
    session.queue().schedule_at(700.0,
                                [&session] { session.reconnect_client(2); });
    session.run_to_quiescence();

    EXPECT_TRUE(session.converged()) << seed;
    EXPECT_EQ(oracle.verdict_mismatches(), 0u) << seed;
    // The outage actually cost traffic, and retransmission repaid it.
    EXPECT_GT(session.network().total_fault_stats().dropped_down, 0u);
    EXPECT_GT(session.link_stats().retransmits, 0u) << seed;
  }
}

TEST(ClientRestart, ResyncsFromNotifierSnapshot) {
  for (const std::uint64_t seed : {8u, 9u}) {
    ObserverMux mux;
    CausalityOracle oracle(4, true);
    mux.add(&oracle);
    engine::StarSession session(base_cfg(seed, true), &mux);
    StarWorkload workload(session, base_workload(seed + 60));
    workload.start();

    session.queue().schedule_at(250.0,
                                [&session] { session.restart_client(3); });
    session.run_to_quiescence();

    // Unpropagated site-3 edits died with its process — honest crash
    // semantics — but every replica still agrees on the result and every
    // concurrency verdict stays oracle-clean.
    EXPECT_TRUE(session.converged()) << seed;
    EXPECT_EQ(oracle.verdict_mismatches(), 0u) << seed;
  }
}

}  // namespace
}  // namespace ccvc::sim
