// Intention-preservation sweep for the all-concurrent case.
//
// The oracle itself — the direct computation of the intention-preserved
// merge when every site issues exactly one pairwise-concurrent op —
// lives in sim/intention.hpp (shared with the chaos harness).  This
// sweep checks the engine's converged result against it for random
// instances: an end-to-end check of §2's intention-preservation
// requirement that does not reuse any transformation code.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "engine/session.hpp"
#include "sim/intention.hpp"
#include "util/rng.hpp"

namespace ccvc::sim {
namespace {

class IntentionOracleSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntentionOracleSweep, ConcurrentSingleOpsMergePerOracle) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t sites = 2 + rng.index(6);  // 2..7
    std::string base(8 + rng.index(16), 'x');
    for (auto& c : base) c = static_cast<char>('a' + rng.index(26));

    std::vector<IntentionOp> ops;
    for (SiteId i = 1; i <= sites; ++i) {
      IntentionOp op;
      op.site = i;
      op.is_insert = rng.chance(0.6);
      if (op.is_insert) {
        op.pos = rng.index(base.size() + 1);
        // Distinct uppercase payload per site, so the merged text shows
        // ownership unambiguously.
        op.text = std::string(1 + rng.index(3),
                              static_cast<char>('A' + (i - 1)));
      } else {
        op.count = 1 + rng.index(std::min<std::size_t>(base.size(), 5));
        op.pos = rng.index(base.size() - op.count + 1);
      }
      ops.push_back(op);
    }

    engine::StarSessionConfig cfg;
    cfg.num_sites = sites;
    cfg.initial_doc = base;
    cfg.uplink = net::LatencyModel::uniform(1.0, 100.0);
    cfg.downlink = net::LatencyModel::uniform(1.0, 100.0);
    cfg.seed = GetParam() * 1000 + static_cast<std::uint64_t>(iter);
    engine::StarSession session(cfg);

    // All ops issued before any message travels: pairwise concurrent.
    for (const auto& op : ops) {
      if (op.is_insert) {
        session.client(op.site).insert(op.pos, op.text);
      } else {
        session.client(op.site).erase(op.pos, op.count);
      }
    }
    session.run_to_quiescence();

    ASSERT_TRUE(session.converged());
    const std::string verdict =
        check_intention_merge(base, ops, session.notifier().text());
    EXPECT_EQ(verdict, "")
        << "merged=\"" << session.notifier().text() << "\" base=\"" << base
        << "\" seed=" << GetParam() << " iter=" << iter
        << " sites=" << sites;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntentionOracleSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ccvc::sim
