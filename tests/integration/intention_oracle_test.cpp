// Intention-preservation oracle for the all-concurrent case.
//
// When every site issues exactly one operation simultaneously (pairwise
// concurrent), the intention-preserved merge is directly computable
// without any OT:
//   * a delete removes exactly its original characters (overlaps remove
//     each character once);
//   * an insert anchored at original position p appears immediately
//     before the first *surviving* original character at or after p
//     (its "slot"), contiguously and exactly once;
//   * inserts sharing the same *anchor* are ordered by site priority
//     (the deterministic II tie-break);
//   * inserts with different anchors collapsed into one slot by a
//     concurrent deletion may appear in either order — that order is
//     decided by the notifier's serialization (the same path-dependence
//     tp2_test documents), and all replicas agree on it.
// The engine's converged result must satisfy this oracle for every
// random instance — an end-to-end check of §2's intention-preservation
// requirement that does not reuse any transformation code.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "engine/session.hpp"
#include "util/rng.hpp"

namespace ccvc::sim {
namespace {

struct SingleOp {
  SiteId site = 0;
  bool is_insert = true;
  std::size_t pos = 0;
  std::string text;       // insert payload
  std::size_t count = 0;  // delete length
};

/// Checks `merged` against the oracle; returns an empty string on
/// success, else a diagnostic.
std::string check_merge(const std::string& base,
                        const std::vector<SingleOp>& ops,
                        const std::string& merged) {
  std::vector<bool> deleted(base.size(), false);
  for (const auto& op : ops) {
    if (!op.is_insert) {
      for (std::size_t k = 0; k < op.count; ++k) deleted[op.pos + k] = true;
    }
  }
  std::string survivors;
  for (std::size_t k = 0; k < base.size(); ++k) {
    if (!deleted[k]) survivors.push_back(base[k]);
  }

  auto slot_of = [&](std::size_t pos) {
    std::size_t s = 0;
    for (std::size_t k = 0; k < pos; ++k) {
      if (!deleted[k]) ++s;
    }
    return s;
  };

  // Split `merged` into per-slot insert segments around the survivors.
  // Inserted characters are uppercase; base characters lowercase, so the
  // survivor walk is unambiguous.
  std::vector<std::string> segments(survivors.size() + 1);
  std::size_t next_survivor = 0;
  for (const char c : merged) {
    if (next_survivor < survivors.size() && c == survivors[next_survivor] &&
        (c < 'A' || c > 'Z')) {
      ++next_survivor;
    } else {
      segments[next_survivor].push_back(c);
    }
  }
  if (next_survivor != survivors.size()) {
    return "survivor characters missing or reordered";
  }

  // Each insert must appear exactly once, contiguously, in its slot.
  std::map<std::size_t, std::vector<const SingleOp*>> by_slot;
  for (const auto& op : ops) {
    if (op.is_insert) by_slot[slot_of(op.pos)].push_back(&op);
  }
  for (std::size_t s = 0; s <= survivors.size(); ++s) {
    const auto it = by_slot.find(s);
    const std::string& seg = segments[s];
    if (it == by_slot.end()) {
      if (!seg.empty()) return "unexpected insert text in slot";
      continue;
    }
    // Record each block's offset within the segment.
    std::size_t expected_len = 0;
    std::vector<std::pair<const SingleOp*, std::size_t>> offsets;
    for (const SingleOp* op : it->second) {
      const std::size_t at = seg.find(op->text);
      if (at == std::string::npos) return "insert text missing from slot";
      offsets.emplace_back(op, at);
      expected_len += op->text.size();
    }
    if (seg.size() != expected_len) return "stray characters in slot";
    // Same-anchor groups must be in site order.
    for (const auto& [a, a_off] : offsets) {
      for (const auto& [b, b_off] : offsets) {
        if (a->pos == b->pos && a->site < b->site && a_off > b_off) {
          return "same-anchor inserts out of site order";
        }
      }
    }
  }
  return "";
}

class IntentionOracleSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntentionOracleSweep, ConcurrentSingleOpsMergePerOracle) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t sites = 2 + rng.index(6);  // 2..7
    std::string base(8 + rng.index(16), 'x');
    for (auto& c : base) c = static_cast<char>('a' + rng.index(26));

    std::vector<SingleOp> ops;
    for (SiteId i = 1; i <= sites; ++i) {
      SingleOp op;
      op.site = i;
      op.is_insert = rng.chance(0.6);
      if (op.is_insert) {
        op.pos = rng.index(base.size() + 1);
        // Distinct uppercase payload per site, so the merged text shows
        // ownership unambiguously.
        op.text = std::string(1 + rng.index(3),
                              static_cast<char>('A' + (i - 1)));
      } else {
        op.count = 1 + rng.index(std::min<std::size_t>(base.size(), 5));
        op.pos = rng.index(base.size() - op.count + 1);
      }
      ops.push_back(op);
    }

    engine::StarSessionConfig cfg;
    cfg.num_sites = sites;
    cfg.initial_doc = base;
    cfg.uplink = net::LatencyModel::uniform(1.0, 100.0);
    cfg.downlink = net::LatencyModel::uniform(1.0, 100.0);
    cfg.seed = GetParam() * 1000 + static_cast<std::uint64_t>(iter);
    engine::StarSession session(cfg);

    // All ops issued before any message travels: pairwise concurrent.
    for (const auto& op : ops) {
      if (op.is_insert) {
        session.client(op.site).insert(op.pos, op.text);
      } else {
        session.client(op.site).erase(op.pos, op.count);
      }
    }
    session.run_to_quiescence();

    ASSERT_TRUE(session.converged());
    const std::string verdict =
        check_merge(base, ops, session.notifier().text());
    EXPECT_EQ(verdict, "")
        << "merged=\"" << session.notifier().text() << "\" base=\"" << base
        << "\" seed=" << GetParam() << " iter=" << iter
        << " sites=" << sites;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntentionOracleSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ccvc::sim
