// Failure injection — FIFO is load-bearing.  §4 derives the simplified
// checks (5) and (7) *from* the star topology plus "the FIFO property of
// TCP connections"; the acknowledgement counters the control algorithm
// uses assume the same.  Running the identical sessions over unordered
// (datagram-like) channels must break the protocol in an observable way
// — transformation against the wrong set, out-of-bounds application
// (ContractViolation from strict apply), or divergence.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/runner.hpp"
#include "util/check.hpp"

namespace ccvc::sim {
namespace {

struct Outcome {
  bool threw = false;
  bool converged = false;
};

Outcome run_once(net::Ordering ordering, std::uint64_t seed) {
  engine::StarSessionConfig cfg;
  cfg.num_sites = 4;
  cfg.initial_doc = "fifo is load bearing in this protocol";
  cfg.channel_ordering = ordering;
  // Strong jitter: unordered delivery times actually invert.
  cfg.uplink = net::LatencyModel::uniform(1.0, 400.0);
  cfg.downlink = net::LatencyModel::uniform(1.0, 400.0);
  cfg.seed = seed;
  // The fidelity cross-check would (correctly) fire first under
  // reordering; disable it to let the raw protocol show its failure
  // modes instead.
  cfg.engine.check_fidelity = false;
  cfg.engine.log_verdicts = false;

  WorkloadConfig w;
  w.ops_per_site = 30;
  w.mean_think_ms = 15.0;
  w.hotspot_prob = 0.5;
  w.seed = seed + 5;

  Outcome out;
  try {
    const StarRunReport r = run_star(cfg, w);
    out.converged = r.converged;
  } catch (const ContractViolation&) {
    out.threw = true;
  }
  return out;
}

TEST(FifoRequirement, UnorderedChannelsBreakTheProtocol) {
  int failures = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    // Control arm: the same seeds over FIFO channels are flawless.
    const Outcome fifo = run_once(net::Ordering::kFifo, seed);
    EXPECT_FALSE(fifo.threw) << seed;
    EXPECT_TRUE(fifo.converged) << seed;

    const Outcome udp = run_once(net::Ordering::kUnordered, seed);
    if (udp.threw || !udp.converged) ++failures;
  }
  // Reordering must be observably fatal for most seeds at this load.
  EXPECT_GE(failures, 3);
}

}  // namespace
}  // namespace ccvc::sim
