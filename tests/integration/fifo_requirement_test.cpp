// Failure injection — FIFO is load-bearing.  §4 derives the simplified
// checks (5) and (7) *from* the star topology plus "the FIFO property of
// TCP connections"; the acknowledgement counters the control algorithm
// uses assume the same.  Running the identical sessions over unordered
// (datagram-like) channels must break the protocol with a *specific*
// signature: the compressed concurrency checks return verdicts the
// ground-truth causality oracle refutes (misclassified concurrency),
// and downstream of those wrong verdicts the run either throws a
// contract violation or diverges.
//
// The reliability sublayer exists to close exactly this gap: its
// sequence numbers re-impose FIFO over the same unordered channels, and
// the identical sessions become flawless again.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/workload.hpp"
#include "util/check.hpp"

namespace ccvc::sim {
namespace {

struct Outcome {
  bool threw = false;
  bool converged = false;
  std::uint64_t verdicts = 0;
  std::uint64_t mismatches = 0;  // verdicts the causality oracle refutes
  std::uint64_t reordered = 0;   // frames the reliability layer resequenced

  bool broke() const { return threw || !converged || mismatches > 0; }
};

Outcome run_once(net::Ordering ordering, std::uint64_t seed, bool reliable) {
  engine::StarSessionConfig cfg;
  cfg.num_sites = 4;
  cfg.initial_doc = "fifo is load bearing in this protocol";
  cfg.channel_ordering = ordering;
  // Strong jitter: unordered delivery times actually invert.
  cfg.uplink = net::LatencyModel::uniform(1.0, 400.0);
  cfg.downlink = net::LatencyModel::uniform(1.0, 400.0);
  cfg.seed = seed;
  cfg.reliability.enabled = reliable;
  // The fidelity cross-check would (correctly) fire first under
  // reordering; disable it so the verdict stream itself shows the
  // failure.  Verdict logging stays ON — the oracle needs it.
  cfg.engine.check_fidelity = false;

  WorkloadConfig w;
  w.ops_per_site = 30;
  w.mean_think_ms = 15.0;
  w.hotspot_prob = 0.5;
  w.seed = seed + 5;

  ObserverMux mux;
  CausalityOracle oracle(cfg.num_sites, cfg.engine.transform);
  mux.add(&oracle);
  engine::StarSession session(cfg, &mux);
  StarWorkload workload(session, w);
  workload.start();

  Outcome out;
  try {
    session.run_to_quiescence();
    out.converged = session.converged();
  } catch (const ContractViolation&) {
    out.threw = true;
  }
  // Readable even after a mid-run throw — that is why this drives the
  // session directly instead of through run_star().
  out.verdicts = oracle.verdicts_checked();
  out.mismatches = oracle.verdict_mismatches();
  if (reliable) out.reordered = session.link_stats().reordered;
  return out;
}

TEST(FifoRequirement, UnorderedChannelsCorruptTheConcurrencyVerdicts) {
  int failures = 0;
  std::uint64_t total_mismatches = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    // Control arm: the same seeds over FIFO channels are flawless.
    const Outcome fifo = run_once(net::Ordering::kFifo, seed, false);
    EXPECT_FALSE(fifo.threw) << seed;
    EXPECT_TRUE(fifo.converged) << seed;
    EXPECT_EQ(fifo.mismatches, 0u) << seed;
    EXPECT_GT(fifo.verdicts, 0u) << seed;

    const Outcome udp = run_once(net::Ordering::kUnordered, seed, false);
    if (udp.broke()) ++failures;
    total_mismatches += udp.mismatches;
  }
  // Reordering must be observably fatal for most seeds at this load...
  EXPECT_GE(failures, 3);
  // ...and the root cause must show: verdicts the ground-truth oracle
  // refutes, not just some generic crash.
  EXPECT_GT(total_mismatches, 0u);
}

TEST(FifoRequirement, ReliabilityLayerRestoresCorrectnessOverUnordered) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Outcome out = run_once(net::Ordering::kUnordered, seed, true);
    EXPECT_FALSE(out.threw) << seed;
    EXPECT_TRUE(out.converged) << seed;
    EXPECT_EQ(out.mismatches, 0u) << seed;
    EXPECT_GT(out.verdicts, 0u) << seed;
    // The channels really did scramble frames; the sequence numbers
    // unscrambled them.
    EXPECT_GT(out.reordered, 0u) << seed;
  }
}

}  // namespace
}  // namespace ccvc::sim
