// Chaos property test (ctest label: chaos).
//
// Drives full sessions through the fault injector at aggressive rates —
// dropped, duplicated, corrupted, and reordered frames, one notifier
// crash-restart and one client outage per run — and asserts the
// recovery protocol heals everything: the run terminates, replicas
// converge, every concurrency verdict matches the ground-truth oracle,
// corruption is caught by the frame checksum (never decoded into
// garbage), and the whole ordeal is reproducible from its seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/chaos.hpp"
#include "sim/intention.hpp"
#include "util/rng.hpp"

namespace ccvc::sim {
namespace {

net::FaultPlan chaos_faults() {
  net::FaultPlan plan;
  plan.drop_prob = 0.15;     // ≤ 20%
  plan.dup_prob = 0.08;      // ≤ 10%
  plan.corrupt_prob = 0.04;  // ≤ 5%
  plan.reorder_prob = 0.10;
  plan.reorder_window_ms = 80.0;
  return plan;
}

ChaosConfig chaos_cfg(std::uint64_t seed) {
  ChaosConfig cfg;
  cfg.num_sites = 2 + seed % 7;  // sweeps N ∈ {2..8}
  cfg.seed = seed;
  cfg.uplink_faults = chaos_faults();
  cfg.downlink_faults = chaos_faults();
  cfg.workload.ops_per_site = 20;
  cfg.workload.mean_think_ms = 25.0;
  cfg.workload.hotspot_prob = 0.4;
  cfg.checkpoint_every_ms = 200.0;   // durable checkpoints mid-flight
  cfg.crash_notifier_at_ms = 260.0;  // one notifier crash-restart
  cfg.disconnect_at_ms = 120.0;      // one client outage
  cfg.reconnect_at_ms = 480.0;
  cfg.disconnect_site = 1;
  return cfg;
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, ConvergesWithOracleCleanVerdictsUnderFaults) {
  const ChaosConfig cfg = chaos_cfg(GetParam());
  const ChaosReport r = run_chaos(cfg);

  // Liveness: retransmission actually drained everything.
  ASSERT_TRUE(r.completed) << "stuck at t=" << r.sim_duration_ms;
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
  EXPECT_GT(r.verdicts, 0u);

  // The faults were real, and the protocol visibly fought them.
  EXPECT_GT(r.faults.dropped, 0u);
  EXPECT_GT(r.faults.duplicated, 0u);
  EXPECT_GT(r.links.retransmits, 0u);
  EXPECT_GT(r.links.duplicates, 0u);
  EXPECT_EQ(r.notifier_crashes, 1u);

  // Corruption is *detected* — a corrupted frame is rejected by its
  // CRC and healed by retransmission, never decoded into garbage.
  if (r.faults.corrupted > 0) {
    EXPECT_GT(r.links.checksum_rejects, 0u);
  }
}

TEST_P(ChaosSweep, RunsAreReproducibleFromTheSeed) {
  const ChaosConfig cfg = chaos_cfg(GetParam());
  const ChaosReport a = run_chaos(cfg);
  const ChaosReport b = run_chaos(cfg);
  EXPECT_EQ(a.final_doc, b.final_doc);
  EXPECT_EQ(a.ops_generated, b.ops_generated);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.sim_duration_ms, b.sim_duration_ms);
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
  EXPECT_EQ(a.faults.duplicated, b.faults.duplicated);
  EXPECT_EQ(a.faults.corrupted, b.faults.corrupted);
  EXPECT_EQ(a.faults.reordered, b.faults.reordered);
  EXPECT_EQ(a.links.data_sent, b.links.data_sent);
  EXPECT_EQ(a.links.retransmits, b.links.retransmits);
  EXPECT_EQ(a.links.delivered, b.links.delivered);
  EXPECT_EQ(a.links.checksum_rejects, b.links.checksum_rejects);
}

TEST_P(ChaosSweep, ClientCrashRestartUnderFaultsStillConverges) {
  ChaosConfig cfg = chaos_cfg(GetParam() + 100);
  cfg.restart_client_at_ms = 320.0;
  cfg.restart_site = 2;
  if (cfg.num_sites < 2) cfg.num_sites = 2;
  const ChaosReport r = run_chaos(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
}

TEST_P(ChaosSweep, FailoverToHotStandbyUnderFaultsStillConverges) {
  // The primary notifier fail-stops mid-run (it does not come back) and
  // the hot standby is promoted from its replicated checkpoint + WAL.
  // Every replica must still converge with oracle-clean verdicts, and
  // the promotion must be exactly one — no spurious re-promotion.
  ChaosConfig cfg = chaos_cfg(GetParam() + 200);
  cfg.crash_notifier_at_ms = -1.0;  // fail-stop instead of crash-restart
  cfg.standby = true;
  cfg.failover_at_ms = 250.0;
  const ChaosReport r = run_chaos(cfg);
  ASSERT_TRUE(r.completed) << "stuck at t=" << r.sim_duration_ms;
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
  EXPECT_GT(r.verdicts, 0u);
  EXPECT_EQ(r.failover_promotions, 1u);
  EXPECT_EQ(r.notifier_crashes, 0u);  // fail-stop is not a crash-restart
}

TEST_P(ChaosSweep, TinySendWindowBackpressuresInsteadOfFaulting) {
  // A send window far below the in-flight demand used to be a
  // ContractViolation; now senders stall.  The workload must visibly
  // defer edits, the link must record the stalls, and — the property —
  // the run still completes and converges with every op accounted for.
  ChaosConfig cfg = chaos_cfg(GetParam() + 300);
  cfg.reliability.max_unacked = 2;
  const ChaosReport r = run_chaos(cfg);
  ASSERT_TRUE(r.completed) << "stuck at t=" << r.sim_duration_ms;
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.verdict_mismatches, 0u);
  EXPECT_GT(r.links.stalls, 0u);
  EXPECT_GT(r.edits_deferred, 0u);
  EXPECT_EQ(r.ops_generated, cfg.workload.ops_per_site * cfg.num_sites);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(ChaosIntention, FaultsDoNotErodeIntentionPreservation) {
  // The all-concurrent single-op instance whose intention-preserved
  // merge is computable without OT (sim/intention.hpp), now run over
  // drop/dup/corrupt/reorder channels with a notifier crash in the
  // middle: faults may delay the merge, never change it.
  util::Rng rng(0xC4A05);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t sites = 2 + rng.index(6);  // 2..7
    std::string base(8 + rng.index(16), 'x');
    for (auto& c : base) c = static_cast<char>('a' + rng.index(26));

    std::vector<IntentionOp> ops;
    for (SiteId i = 1; i <= sites; ++i) {
      IntentionOp op;
      op.site = i;
      op.is_insert = rng.chance(0.6);
      if (op.is_insert) {
        op.pos = rng.index(base.size() + 1);
        op.text = std::string(1 + rng.index(3),
                              static_cast<char>('A' + (i - 1)));
      } else {
        op.count = 1 + rng.index(std::min<std::size_t>(base.size(), 5));
        op.pos = rng.index(base.size() - op.count + 1);
      }
      ops.push_back(op);
    }

    engine::StarSessionConfig cfg;
    cfg.num_sites = sites;
    cfg.initial_doc = base;
    cfg.uplink = net::LatencyModel::uniform(5.0, 80.0);
    cfg.downlink = net::LatencyModel::uniform(5.0, 80.0);
    cfg.reliability.enabled = true;
    cfg.uplink_faults = chaos_faults();
    cfg.downlink_faults = chaos_faults();
    cfg.seed = 1000u + static_cast<std::uint64_t>(iter);
    engine::StarSession session(cfg);

    // All ops issued before any message travels: pairwise concurrent,
    // whatever the network later does to the frames.
    for (const auto& op : ops) {
      if (op.is_insert) {
        session.client(op.site).insert(op.pos, op.text);
      } else {
        session.client(op.site).erase(op.pos, op.count);
      }
    }
    // A crash mid-propagation: acked ops are in the durable log, unacked
    // ones are retransmitted by their clients — none may be lost.
    session.queue().schedule_at(40.0, [&session] { session.crash_notifier(); });
    session.run_to_quiescence();

    ASSERT_TRUE(session.converged()) << "iter " << iter;
    const std::string verdict =
        check_intention_merge(base, ops, session.notifier().text());
    EXPECT_EQ(verdict, "")
        << "merged=\"" << session.notifier().text() << "\" base=\"" << base
        << "\" iter=" << iter << " sites=" << sites;
  }
}

}  // namespace
}  // namespace ccvc::sim
