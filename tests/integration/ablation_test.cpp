// E8 — the §6 ablation at session scale: with the notifier relaying
// operations untransformed, (a) the 2-element concurrency checks stop
// matching the true causality of the (original) operations, and (b)
// replicas diverge once operations genuinely conflict.  The identical
// sessions with transformation on are flawless.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/runner.hpp"

namespace ccvc::sim {
namespace {

struct AblationOutcome {
  bool converged = false;
  std::uint64_t verdicts = 0;
  std::uint64_t mismatches = 0;
};

AblationOutcome run_once(bool transform, std::uint64_t seed) {
  engine::StarSessionConfig scfg;
  scfg.num_sites = 4;
  scfg.initial_doc = "collaborative editing needs transformation";
  scfg.engine.transform = transform;
  scfg.engine.check_fidelity = transform;
  scfg.uplink = net::LatencyModel::lognormal(60.0, 0.5, 20.0);
  scfg.downlink = net::LatencyModel::lognormal(60.0, 0.5, 20.0);
  scfg.seed = seed;

  WorkloadConfig wcfg;
  wcfg.ops_per_site = 30;
  wcfg.mean_think_ms = 20.0;  // think << RTT: lots of concurrency
  wcfg.hotspot_prob = 0.6;
  wcfg.hotspot_width = 8;
  wcfg.seed = seed + 1;

  const StarRunReport r = run_star(scfg, wcfg);
  return AblationOutcome{r.converged, r.verdicts, r.verdict_mismatches};
}

TEST(Ablation, UntransformedRelayBreaksVerdictsAndConvergence) {
  std::uint64_t total_mismatches = 0;
  int diverged = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const AblationOutcome off = run_once(false, seed);
    total_mismatches += off.mismatches;
    if (!off.converged) ++diverged;
    EXPECT_GT(off.verdicts, 0u);

    // The control arm: same seed, transformation on.
    const AblationOutcome on = run_once(true, seed);
    EXPECT_TRUE(on.converged) << "seed " << seed;
    EXPECT_EQ(on.mismatches, 0u) << "seed " << seed;
  }
  // §6's claim, quantified: without transformation the compressed checks
  // are wrong (and replicas diverge) under real concurrency.
  EXPECT_GT(total_mismatches, 0u);
  EXPECT_GE(diverged, 2);
}

TEST(Ablation, QuietSequentialSessionSurvivesWithoutTransformation) {
  // Negative control: with no concurrency at all (one slow typist),
  // relaying as-is is harmless — the breakage is specifically about
  // concurrent operations.
  engine::StarSessionConfig scfg;
  scfg.num_sites = 3;
  scfg.initial_doc = "x";
  scfg.engine.transform = false;
  scfg.engine.check_fidelity = false;
  scfg.uplink = net::LatencyModel::fixed(5.0);
  scfg.downlink = net::LatencyModel::fixed(5.0);

  ObserverMux mux;
  CausalityOracle oracle(3, /*transforms_enabled=*/false);
  mux.add(&oracle);
  engine::StarSession session(scfg, &mux);
  // Strictly sequential edits: each waits for full propagation.
  double t = 0.0;
  for (int round = 0; round < 5; ++round) {
    for (SiteId site = 1; site <= 3; ++site) {
      session.queue().schedule_at(t, [&session, site] {
        session.client(site).insert(session.client(site).document().size(),
                                    "ab");
      });
      t += 100.0;  // >> RTT
    }
  }
  session.run_to_quiescence();
  EXPECT_TRUE(session.converged());
  EXPECT_EQ(oracle.verdict_mismatches(), 0u);
}

}  // namespace
}  // namespace ccvc::sim
