// Reproducibility: identical configuration + seed must replay the whole
// session bit-identically — documents, traffic counts, verdict streams,
// latency percentiles.  This property is what makes E6's cross-mode
// verdict comparison meaningful and every EXPERIMENTS.md number
// re-derivable.
#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace ccvc::sim {
namespace {

StarRunReport run_once(std::uint64_t seed) {
  engine::StarSessionConfig cfg;
  cfg.num_sites = 6;
  cfg.initial_doc = "determinism";
  cfg.uplink = net::LatencyModel::lognormal(50.0, 0.7, 15.0);
  cfg.downlink = net::LatencyModel::uniform(5.0, 120.0);
  cfg.seed = seed;
  WorkloadConfig w;
  w.ops_per_site = 30;
  w.mean_think_ms = 25.0;
  w.hotspot_prob = 0.4;
  w.seed = seed * 31;
  return run_star(cfg, w);
}

TEST(Determinism, IdenticalSeedsReplayIdentically) {
  const StarRunReport a = run_once(424242);
  const StarRunReport b = run_once(424242);
  EXPECT_EQ(a.final_doc, b.final_doc);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.stamp_bytes, b.stamp_bytes);
  EXPECT_EQ(a.verdicts, b.verdicts);
  EXPECT_EQ(a.concurrent_verdicts, b.concurrent_verdicts);
  EXPECT_EQ(a.propagation_p50_ms, b.propagation_p50_ms);
  EXPECT_EQ(a.propagation_p99_ms, b.propagation_p99_ms);
  EXPECT_EQ(a.sim_duration_ms, b.sim_duration_ms);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const StarRunReport a = run_once(1);
  const StarRunReport b = run_once(2);
  // Not a protocol property — just evidence the seed actually matters.
  EXPECT_NE(a.final_doc, b.final_doc);
}

TEST(Determinism, MeshSessionsReplayIdentically) {
  engine::MeshSessionConfig cfg;
  cfg.num_sites = 5;
  cfg.stamp = engine::MeshStamp::kFullVector;
  cfg.latency = net::LatencyModel::uniform(1.0, 150.0);
  cfg.seed = 777;
  WorkloadConfig w;
  w.ops_per_site = 20;
  w.seed = 778;
  const MeshRunReport a = run_mesh(cfg, w);
  const MeshRunReport b = run_mesh(cfg, w);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.stamp_bytes, b.stamp_bytes);
  EXPECT_TRUE(a.all_delivered);
}

}  // namespace
}  // namespace ccvc::sim
