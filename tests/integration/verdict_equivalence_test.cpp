// E6 — the compressed 2-element scheme must produce exactly the same
// concurrency verdicts as (a) the ground-truth causality oracle and
// (b) the full-vector-clock baseline run over the identical session.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/runner.hpp"

namespace ccvc::sim {
namespace {

/// Runs one deterministic session in the given stamp mode and returns
/// the full verdict stream.
std::vector<engine::Verdict> run_and_record(engine::StampMode mode,
                                            std::size_t sites,
                                            std::uint64_t seed) {
  ObserverMux mux;
  VerdictRecorder recorder;
  CausalityOracle oracle(sites);
  mux.add(&recorder);
  mux.add(&oracle);

  engine::StarSessionConfig scfg;
  scfg.num_sites = sites;
  scfg.initial_doc = "0123456789 0123456789";
  scfg.engine.stamp_mode = mode;
  scfg.uplink = net::LatencyModel::lognormal(30.0, 0.5, 8.0);
  scfg.downlink = net::LatencyModel::lognormal(30.0, 0.5, 8.0);
  scfg.seed = seed;

  engine::StarSession session(scfg, &mux);
  WorkloadConfig wcfg;
  wcfg.ops_per_site = 30;
  wcfg.mean_think_ms = 20.0;
  wcfg.hotspot_prob = 0.4;
  wcfg.seed = seed + 17;
  StarWorkload workload(session, wcfg);
  workload.start();
  session.run_to_quiescence();

  EXPECT_TRUE(session.converged());
  EXPECT_EQ(oracle.verdict_mismatches(), 0u)
      << "mode=" << engine::to_string(mode);
  return recorder.verdicts();
}

class VerdictEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerdictEquivalence, CompressedMatchesOracleAndFullVector) {
  const std::uint64_t seed = GetParam();
  const auto compressed =
      run_and_record(engine::StampMode::kCompressed, 5, seed);
  const auto full = run_and_record(engine::StampMode::kFullVector, 5, seed);

  // The two modes run identical deterministic sessions, so the verdict
  // streams must agree element-by-element: the 2-integer stamp captures
  // exactly the causality the (N+1)-integer stamp captures.
  ASSERT_EQ(compressed.size(), full.size());
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    EXPECT_EQ(compressed[i].at_site, full[i].at_site) << "at verdict " << i;
    EXPECT_EQ(compressed[i].incoming, full[i].incoming) << "at verdict " << i;
    EXPECT_EQ(compressed[i].buffered, full[i].buffered) << "at verdict " << i;
    EXPECT_EQ(compressed[i].concurrent, full[i].concurrent)
        << "at verdict " << i;
  }
  EXPECT_FALSE(compressed.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerdictEquivalence,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

TEST(VerdictEquivalence, ConcurrencyRateGrowsWithLatency) {
  // Sanity on the measurement itself: more latency (relative to think
  // time) means more concurrent operations detected.
  auto rate = [](double latency_ms) {
    engine::StarSessionConfig scfg;
    scfg.num_sites = 4;
    scfg.initial_doc = "the document";
    scfg.uplink = net::LatencyModel::fixed(latency_ms);
    scfg.downlink = net::LatencyModel::fixed(latency_ms);
    scfg.seed = 7;
    WorkloadConfig wcfg;
    wcfg.ops_per_site = 40;
    wcfg.mean_think_ms = 40.0;
    wcfg.seed = 9;
    const StarRunReport r = run_star(scfg, wcfg);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(r.verdict_mismatches, 0u);
    return static_cast<double>(r.concurrent_verdicts) /
           static_cast<double>(std::max<std::uint64_t>(r.verdicts, 1));
  };
  EXPECT_LT(rate(2.0), rate(200.0));
}

}  // namespace
}  // namespace ccvc::sim
