// The full-vector baseline mode (what "most group editors" used, §3.1):
// identical protocol behaviour at O(N) wire cost.  Verifies correctness
// of the baseline itself and the E3 overhead relationship between the
// modes.
#include <gtest/gtest.h>

#include "engine/session.hpp"
#include "sim/observers.hpp"
#include "sim/oracle.hpp"
#include "sim/runner.hpp"

namespace ccvc::sim {
namespace {

StarRunReport run_mode(engine::StampMode mode, std::size_t sites,
                       std::uint64_t seed) {
  engine::StarSessionConfig scfg;
  scfg.num_sites = sites;
  scfg.initial_doc = "baseline comparison document";
  scfg.engine.stamp_mode = mode;
  scfg.seed = seed;
  WorkloadConfig wcfg;
  wcfg.ops_per_site = 25;
  wcfg.mean_think_ms = 20.0;
  wcfg.seed = seed + 3;
  return run_star(scfg, wcfg);
}

TEST(FullVectorMode, ConvergesWithZeroMismatches) {
  for (const std::size_t sites : {2u, 4u, 8u}) {
    const StarRunReport r =
        run_mode(engine::StampMode::kFullVector, sites, 77);
    EXPECT_TRUE(r.converged) << sites;
    EXPECT_EQ(r.verdict_mismatches, 0u) << sites;
  }
}

TEST(FullVectorMode, SameFinalDocumentAsCompressed) {
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    const StarRunReport a =
        run_mode(engine::StampMode::kCompressed, 5, seed);
    const StarRunReport b =
        run_mode(engine::StampMode::kFullVector, 5, seed);
    EXPECT_EQ(a.final_doc, b.final_doc) << "seed " << seed;
    EXPECT_EQ(a.verdicts, b.verdicts);
    EXPECT_EQ(a.concurrent_verdicts, b.concurrent_verdicts);
  }
}

TEST(FullVectorMode, StampBytesGrowWithNWhileCompressedStayFlat) {
  // The paper's headline measured at protocol level: average stamp bytes
  // per message as N grows.
  double prev_full = 0.0;
  for (const std::size_t sites : {4u, 16u, 64u}) {
    const StarRunReport comp =
        run_mode(engine::StampMode::kCompressed, sites, 11);
    const StarRunReport full =
        run_mode(engine::StampMode::kFullVector, sites, 11);
    EXPECT_LE(comp.max_stamp_bytes, 4.0) << sites;   // 2 varints, small
    EXPECT_GT(full.avg_stamp_bytes, static_cast<double>(sites)) << sites;
    EXPECT_GT(full.avg_stamp_bytes, prev_full);      // strictly growing
    prev_full = full.avg_stamp_bytes;
  }
}

TEST(FullVectorMode, TotalTrafficAdvantage) {
  // At N = 32 the compressed sessions ship materially fewer bytes for
  // the same ops.
  const StarRunReport comp =
      run_mode(engine::StampMode::kCompressed, 32, 19);
  const StarRunReport full =
      run_mode(engine::StampMode::kFullVector, 32, 19);
  EXPECT_TRUE(comp.converged);
  EXPECT_TRUE(full.converged);
  EXPECT_EQ(comp.messages, full.messages);
  EXPECT_LT(comp.total_bytes, full.total_bytes);
  EXPECT_LT(comp.stamp_bytes * 5, full.stamp_bytes);
}

}  // namespace
}  // namespace ccvc::sim
