// MUST NOT COMPILE — negative-compile test (ctest WILL_FAIL).
//
// Two messages claiming wire tag 0xC1: CCVC_WIRE_VALIDATE_REGISTRY's
// unique_tags static_assert has to reject this registry at build time.
#include "wire/schema.hpp"

namespace bad {

using ccvc::wire::FieldDesc;
using ccvc::wire::FieldKind;
using ccvc::wire::MessageDesc;

inline constexpr FieldDesc kFields[] = {
    {.name = "x", .kind = FieldKind::kUvarint64, .bound = 10},
};
inline constexpr MessageDesc kFirst{"First", 0xC1, kFields, 1, "", ""};
inline constexpr MessageDesc kSecond{"Second", 0xC1, kFields, 1, "", ""};

inline constexpr const MessageDesc* kBadRegistry[] = {&kFirst, &kSecond};

CCVC_WIRE_VALIDATE_REGISTRY(kBadRegistry, 2);

}  // namespace bad
