// MUST NOT COMPILE — negative-compile test (ctest WILL_FAIL).
//
// A string field without a declared bound (bound = 0): the canonical-
// form rule "every variable-length field is bounded" has to fail the
// build via CCVC_WIRE_VALIDATE_REGISTRY's all_fields_valid assert.
#include "wire/schema.hpp"

namespace bad {

using ccvc::wire::FieldDesc;
using ccvc::wire::FieldKind;
using ccvc::wire::MessageDesc;

inline constexpr FieldDesc kFields[] = {
    {.name = "text", .kind = FieldKind::kString},  // no bound!
};
inline constexpr MessageDesc kMsg{"Unbounded", 0xE0, kFields, 1, "", ""};

inline constexpr const MessageDesc* kBadRegistry[] = {&kMsg};

CCVC_WIRE_VALIDATE_REGISTRY(kBadRegistry, 1);

}  // namespace bad
