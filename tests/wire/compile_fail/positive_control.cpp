// MUST COMPILE — positive control for the negative-compile tests.
//
// Structurally identical to the failing TUs but schema-valid, proving
// the WILL_FAIL results come from the static_asserts and not from an
// include path or syntax problem shared by all three TUs.
#include "wire/schema.hpp"

namespace good {

using ccvc::wire::FieldDesc;
using ccvc::wire::FieldKind;
using ccvc::wire::MessageDesc;

inline constexpr FieldDesc kFields[] = {
    {.name = "x", .kind = FieldKind::kUvarint64, .bound = 10},
};
inline constexpr MessageDesc kFirst{"First", 0xE0, kFields, 1, "", ""};
inline constexpr MessageDesc kSecond{"Second", 0xE1, kFields, 1, "", ""};

inline constexpr const MessageDesc* kGoodRegistry[] = {&kFirst, &kSecond};

CCVC_WIRE_VALIDATE_REGISTRY(kGoodRegistry, 2);

}  // namespace good
