#!/usr/bin/env sh
# Mutation test for `ccvc_schema --check`: the gate must pass on a
# faithful copy of the committed artifacts and FAIL when any one of
# them is mutated (stale schema.json, drifted doc table, stale dict).
# Usage: schema_check_mutation.sh <ccvc_schema-binary> <repo-root>
set -eu

BIN=$1
ROOT=$2
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

stage() {
  rm -rf "$TMP/docs" "$TMP/fuzz"
  mkdir -p "$TMP/docs" "$TMP/fuzz/dict"
  cp "$ROOT/docs/schema.json" "$TMP/docs/schema.json"
  cp "$ROOT/docs/PROTOCOL.md" "$TMP/docs/PROTOCOL.md"
  cp "$ROOT"/fuzz/dict/*.dict "$TMP/fuzz/dict/"
}

expect_fail() {
  if "$BIN" --check --root "$TMP" >/dev/null 2>&1; then
    echo "FAIL: --check accepted a mutated $1" >&2
    exit 1
  fi
  echo "ok: --check rejected mutated $1"
}

# Control: the faithful copy passes.
stage
"$BIN" --check --root "$TMP" >/dev/null
echo "ok: --check passes on a faithful copy"

# Mutation 1: a bound silently edited in the committed schema.json.
stage
sed 's/"bound": "1048576"/"bound": "1048577"/' \
  "$TMP/docs/schema.json" > "$TMP/docs/schema.json.new"
mv "$TMP/docs/schema.json.new" "$TMP/docs/schema.json"
expect_fail "schema.json (edited bound)"

# Mutation 2: a row of the generated PROTOCOL.md table drifts.
stage
sed 's/| `0xC1` | ClientMsg |/| `0xC1` | ClientMessage |/' \
  "$TMP/docs/PROTOCOL.md" > "$TMP/docs/PROTOCOL.md.new"
mv "$TMP/docs/PROTOCOL.md.new" "$TMP/docs/PROTOCOL.md"
expect_fail "PROTOCOL.md (renamed table row)"

# Mutation 3: the doc-table markers vanish entirely.
stage
sed 's/<!-- ccvc_schema:doc-table:begin -->//' \
  "$TMP/docs/PROTOCOL.md" > "$TMP/docs/PROTOCOL.md.new"
mv "$TMP/docs/PROTOCOL.md.new" "$TMP/docs/PROTOCOL.md"
expect_fail "PROTOCOL.md (missing markers)"

# Mutation 4: a fuzz dictionary goes stale.
stage
echo '# stale entry' >> "$TMP/fuzz/dict/message.dict"
expect_fail "fuzz/dict/message.dict (appended entry)"

# Mutation 5: schema.json deleted.
stage
rm "$TMP/docs/schema.json"
expect_fail "schema.json (missing file)"

echo "schema_check_mutation: all mutations rejected"
