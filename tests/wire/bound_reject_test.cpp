// Per-field boundary enforcement: the exhaustive self-test sweeps every
// declared bound through the shared engine, and targeted cases confirm
// the bounds actually protect the real top-level decoders.
#include <gtest/gtest.h>

#include "engine/message.hpp"
#include "engine/reliable_link.hpp"
#include "engine/session.hpp"
#include "engine/snapshot.hpp"
#include "util/check.hpp"
#include "util/varint.hpp"
#include "wire/engine.hpp"
#include "wire/selftest.hpp"

namespace {

using namespace ccvc;

TEST(BoundarySelftest, EveryDeclaredBoundRoundTripsAndRejects) {
  const wire::SelftestResult r = wire::boundary_selftest();
  for (const auto& f : r.failures) ADD_FAILURE() << f;
  EXPECT_TRUE(r.ok());
  // One boundary sweep per variable-length field; a sudden drop means
  // fields silently left the schema.
  EXPECT_GE(r.checks, 200u);
}

TEST(BoundReject, EncodeOverBoundIsContractViolation) {
  util::ByteSink sink;
  wire::Writer w(sink);
  EXPECT_THROW(w.uv(wire::f::kWireOpCount, wire::kMaxDeleteCount + 1),
               ContractViolation);
  EXPECT_THROW(w.u8(wire::f::kWireOpKind, 3), ContractViolation);
  EXPECT_THROW(w.count(wire::f::kWireOps, wire::kMaxOps + 1),
               ContractViolation);
}

TEST(BoundReject, DecodeOverBoundIsDecodeErrorBeforeLengthCheck) {
  // A hostile op-count claim far past the bound, in a tiny buffer: the
  // bound check must fire (DecodeError), not the remaining-bytes check.
  util::ByteSink sink;
  sink.put_u8(0xC1);
  sink.put_uvarint(1);  // id.site
  sink.put_uvarint(1);  // id.seq
  sink.put_uvarint(0);  // csv T[1]
  sink.put_uvarint(1);  // csv T[2]
  sink.put_uvarint(wire::kMaxOps + 1);  // hostile op count
  EXPECT_THROW(engine::decode_client_msg(sink.bytes(),
                                         engine::StampMode::kCompressed),
               util::DecodeError);
}

TEST(BoundReject, ClientCheckpointHostileHistoryCountRejected) {
  util::ByteSink sink;
  sink.put_u8(0xD1);
  sink.put_uvarint(1);   // id
  sink.put_uvarint(2);   // num_sites
  sink.put_string("x");  // document
  sink.put_uvarint(0);   // sv T[1]
  sink.put_uvarint(0);   // sv T[2]
  sink.put_uvarint(0);   // vc: empty
  sink.put_uvarint(wire::kMaxHistory + 1);  // hostile hb count
  EXPECT_THROW(engine::load_client_checkpoint(sink.bytes()),
               util::DecodeError);
}

TEST(BoundReject, NotifierBundleHostileBlobLengthRejected) {
  util::ByteSink sink;
  sink.put_u8(0xD4);
  sink.put_uvarint(1);                    // num_sites
  sink.put_uvarint(wire::kMaxBlob + 1);   // hostile blob length claim
  EXPECT_THROW(engine::decode_notifier_bundle(sink.bytes()),
               util::DecodeError);
}

TEST(BoundReject, SackFrameHostileRangeCountRejected) {
  // The count must be checked before any range is materialized, so a
  // hostile claim fails fast instead of allocating 2^60 pairs.
  util::ByteSink sink;
  sink.put_u8(0xF2);
  sink.put_uvarint(1);                        // ack
  sink.put_uvarint(wire::kMaxSackRanges + 1);  // hostile range count
  EXPECT_THROW(engine::decode_frame(sink.bytes()), util::DecodeError);
}

TEST(BoundReject, LinkStateAckDueByteMustBeBoolean) {
  // The schema says ack_due ∈ {0,1}; 2 is malformed wire input now.
  util::ByteSink sink;
  sink.put_uvarint(1);  // next_seq
  sink.put_uvarint(1);  // expected
  sink.put_u8(2);       // bad flag
  sink.put_uvarint(0);  // unacked
  sink.put_uvarint(0);  // out_of_order
  util::ByteSource src(sink.bytes());
  EXPECT_THROW(engine::ReliableLink::decode_state(src), util::DecodeError);
}

TEST(BoundReject, SessionCheckpointHostileNumSitesRejected) {
  util::ByteSink sink;
  sink.put_u8(0xD3);
  sink.put_uvarint(wire::kMaxSites + 1);  // hostile membership claim
  EXPECT_THROW(
      engine::StarSession(engine::StarSessionConfig{}, sink.bytes()),
      util::DecodeError);
}

}  // namespace
