// The 0xC5 EgressBatch frame (PROTOCOL.md §2.8): golden-bytes pin,
// round trips, and hostile-claim rejection at every declared bound.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/message.hpp"
#include "util/check.hpp"
#include "util/varint.hpp"
#include "wire/schema.hpp"

namespace {

using namespace ccvc;

std::string hex(const std::vector<std::uint8_t>& b) {
  static const char* d = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (auto x : b) {
    s.push_back(d[x >> 4]);
    s.push_back(d[x & 0xf]);
  }
  return s;
}

std::vector<std::uint8_t> unhex(const std::string& s) {
  std::vector<std::uint8_t> b;
  for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
    b.push_back(
        static_cast<std::uint8_t>(std::stoi(s.substr(i, 2), nullptr, 16)));
  }
  return b;
}

// Two real downlink payloads: the CenterMsg golden and a leave notice.
std::vector<net::Payload> sample_msgs() {
  return {unhex("c20102090402000103016101010001"), unhex("c405")};
}

TEST(GoldenBytes, EgressBatchFrame) {
  EXPECT_EQ(hex(engine::encode_batch(sample_msgs())),
            "c5020fc2010209040200010301610101000102c405");
}

TEST(EgressBatch, RoundTrip) {
  const std::vector<net::Payload> msgs = sample_msgs();
  const net::Payload frame = engine::encode_batch(msgs);
  EXPECT_TRUE(engine::is_batch_msg(frame));
  EXPECT_EQ(engine::decode_batch(frame), msgs);
}

TEST(EgressBatch, IsBatchMsgRejectsOtherTags) {
  EXPECT_FALSE(engine::is_batch_msg(sample_msgs()[0]));
  EXPECT_FALSE(engine::is_batch_msg(net::Payload{}));
}

TEST(EgressBatch, SingleMessageRoundTrip) {
  const std::vector<net::Payload> msgs = {unhex("c405")};
  EXPECT_EQ(engine::decode_batch(engine::encode_batch(msgs)), msgs);
}

TEST(EgressBatch, MaxBatchRoundTrip) {
  std::vector<net::Payload> msgs(wire::kMaxBatchMsgs, unhex("c405"));
  EXPECT_EQ(engine::decode_batch(engine::encode_batch(msgs)), msgs);
}

TEST(EgressBatch, EncodeEmptyIsContractViolation) {
  EXPECT_THROW(engine::encode_batch({}), ContractViolation);
}

TEST(EgressBatch, EncodeOverBoundIsContractViolation) {
  std::vector<net::Payload> msgs(wire::kMaxBatchMsgs + 1, unhex("c405"));
  EXPECT_THROW(engine::encode_batch(msgs), ContractViolation);
}

TEST(EgressBatch, DecodeWrongTagRejected) {
  EXPECT_THROW(engine::decode_batch(unhex("c405")), util::DecodeError);
  EXPECT_THROW(engine::decode_batch(net::Payload{}), util::DecodeError);
}

TEST(BoundReject, EgressBatchHostileCountRejected) {
  // The count is checked before any entry is materialized, so a hostile
  // claim fails fast instead of allocating 2^60 payloads.
  util::ByteSink sink;
  sink.put_u8(0xC5);
  sink.put_uvarint(wire::kMaxBatchMsgs + 1);  // hostile message count
  EXPECT_THROW(engine::decode_batch(sink.bytes()), util::DecodeError);
}

TEST(BoundReject, EgressBatchZeroCountRejected) {
  util::ByteSink sink;
  sink.put_u8(0xC5);
  sink.put_uvarint(0);  // a batch must carry at least one message
  EXPECT_THROW(engine::decode_batch(sink.bytes()), util::DecodeError);
}

TEST(BoundReject, EgressBatchEmptyEntryRejected) {
  util::ByteSink sink;
  sink.put_u8(0xC5);
  sink.put_uvarint(1);
  sink.put_uvarint(0);  // zero-length inner message
  EXPECT_THROW(engine::decode_batch(sink.bytes()), util::DecodeError);
}

TEST(BoundReject, EgressBatchHostileEntryLengthRejected) {
  util::ByteSink sink;
  sink.put_u8(0xC5);
  sink.put_uvarint(1);
  sink.put_uvarint(wire::kMaxFramePayload + 1);  // hostile length claim
  EXPECT_THROW(engine::decode_batch(sink.bytes()), util::DecodeError);
}

TEST(BoundReject, EgressBatchTrailingBytesRejected) {
  net::Payload frame = engine::encode_batch({unhex("c405")});
  frame.push_back(0x00);
  EXPECT_THROW(engine::decode_batch(frame), util::DecodeError);
}

TEST(BoundReject, EgressBatchTruncatedRejected) {
  const net::Payload frame = engine::encode_batch(sample_msgs());
  const net::Payload cut(frame.begin(), frame.end() - 1);
  EXPECT_THROW(engine::decode_batch(cut), util::DecodeError);
}

}  // namespace
