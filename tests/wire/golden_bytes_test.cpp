// Golden-bytes pins: the schema-driven codecs must emit byte-for-byte
// what the hand-rolled pre-refactor codecs emitted.  Every hex string
// below was captured from the codecs as they existed before src/wire/
// landed; a diff here is a wire-format break, not a refactor.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "clocks/sk_clock.hpp"
#include "engine/message.hpp"
#include "engine/mesh_site.hpp"
#include "engine/reliable_link.hpp"
#include "engine/session.hpp"
#include "engine/snapshot.hpp"
#include "ot/text_op.hpp"
#include "util/varint.hpp"

namespace {

using namespace ccvc;
using engine::CenterMsg;
using engine::ClientMsg;
using engine::StampMode;

std::string hex(const std::vector<std::uint8_t>& b) {
  static const char* d = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (auto x : b) {
    s.push_back(d[x >> 4]);
    s.push_back(d[x & 0xf]);
  }
  return s;
}

std::vector<std::uint8_t> unhex(const std::string& s) {
  std::vector<std::uint8_t> b;
  for (std::size_t i = 0; i + 1 < s.size(); i += 2) {
    b.push_back(static_cast<std::uint8_t>(
        std::stoi(s.substr(i, 2), nullptr, 16)));
  }
  return b;
}

TEST(GoldenBytes, ClientMsgInsertCompressed) {
  ClientMsg m;
  m.id = OpId{2, 1};
  m.ops = ot::make_insert(0, "hi", 2);
  m.stamp.csv = clocks::CompressedSv{5, 3};
  EXPECT_EQ(hex(engine::encode(m, StampMode::kCompressed)),
            "c10201050301000200026869");
}

TEST(GoldenBytes, ClientMsgDeleteCompressed) {
  ClientMsg m;
  m.id = OpId{3, 7};
  m.ops = ot::make_delete(4, 3, 3);
  m.stamp.csv = clocks::CompressedSv{0, 1};
  EXPECT_EQ(hex(engine::encode(m, StampMode::kCompressed)),
            "c1030700010101030403");
}

TEST(GoldenBytes, ClientMsgInsertFullVector) {
  ClientMsg m;
  m.id = OpId{2, 1};
  m.ops = ot::make_insert(0, "hi", 2);
  m.stamp.full = clocks::VersionVector(std::vector<std::uint64_t>{0, 1, 2});
  EXPECT_EQ(hex(engine::encode(m, StampMode::kFullVector)),
            "c102010300010201000200026869");
}

TEST(GoldenBytes, CenterMsgMixedCompressed) {
  CenterMsg m;
  m.id = OpId{1, 2};
  m.ops = ot::make_insert(3, "a", 1);
  for (auto& op : ot::make_delete(0, 1, 1)) m.ops.push_back(op);
  m.stamp.csv = clocks::CompressedSv{9, 4};
  EXPECT_EQ(hex(engine::encode(m, StampMode::kCompressed)),
            "c20102090402000103016101010001");
}

TEST(GoldenBytes, CenterMsgIdentityFullVector) {
  CenterMsg m;
  m.id = OpId{1, 1};
  m.ops = ot::make_identity(1);
  m.stamp.full =
      clocks::VersionVector(std::vector<std::uint64_t>{0, 2, 0, 1});
  EXPECT_EQ(hex(engine::encode(m, StampMode::kFullVector)),
            "c201010400020001010201");
}

TEST(GoldenBytes, LeaveMsg) {
  EXPECT_EQ(hex(engine::encode_leave(5)), "c405");
}

TEST(GoldenBytes, MeshMsgFullVector) {
  engine::MeshMsg m;
  m.id = OpId{2, 3};
  m.full = clocks::VersionVector(std::vector<std::uint64_t>{0, 1, 2, 3});
  m.ops = ot::make_insert(1, "xy", 2);
  EXPECT_EQ(hex(engine::encode(m, engine::MeshStamp::kFullVector)),
            "c30203040001020301000201027879");
}

TEST(GoldenBytes, MeshMsgSkDiff) {
  engine::MeshMsg m;
  m.id = OpId{1, 4};
  m.sk = clocks::SkTimestamp{{1, 4}, {3, 9}};
  m.ops = ot::make_delete(2, 2, 1);
  EXPECT_EQ(hex(engine::encode(m, engine::MeshStamp::kSkDiff)),
            "c301040201040309020101020101010201");
}

TEST(GoldenBytes, DataFrame) {
  engine::Frame f;
  f.kind = engine::Frame::Kind::kData;
  f.seq = 9;
  f.ack = 4;
  f.payload = {'h', 'i'};
  EXPECT_EQ(hex(engine::encode_frame(f)), "f00904686945785d6d");
}

TEST(GoldenBytes, AckFrame) {
  engine::Frame f;
  f.kind = engine::Frame::Kind::kAck;
  f.ack = 7;
  EXPECT_EQ(hex(engine::encode_frame(f)), "f107a0571ad2");
}

TEST(GoldenBytes, SackFrame) {
  // Ranges ride as (gap, len) deltas off the cumulative ack: {8,9} is
  // gap 8-5=3 / len 2, {12,12} is gap 12-9=3 / len 1 (PROTOCOL.md §2.6).
  engine::Frame f;
  f.kind = engine::Frame::Kind::kSack;
  f.ack = 5;
  f.sack = {{8, 9}, {12, 12}};
  EXPECT_EQ(hex(engine::encode_frame(f)), "f2050203020301882e9b09");
}

TEST(GoldenBytes, LinkState) {
  engine::ReliableLink::State st;
  st.next_seq = 2;
  st.expected = 3;
  st.ack_due = true;
  st.unacked.emplace_back(1, net::Payload{'p', 'l'});
  st.out_of_order.emplace_back(4, net::Payload{'q'});
  util::ByteSink sink;
  engine::ReliableLink::encode_state(st, sink);
  EXPECT_EQ(hex(sink.bytes()), "020301010102706c01040171");
}

// Checkpoints come from a real session so the States are authentic; the
// driver below reproduces the exact pre-refactor capture run.
class GoldenCheckpoints : public ::testing::Test {
 protected:
  GoldenCheckpoints() {
    engine::StarSessionConfig cfg;
    cfg.num_sites = 2;
    cfg.seed = 7;
    s_ = std::make_unique<engine::StarSession>(cfg);
    s_->client(1).insert(0, "ab");
    s_->client(2).insert(0, "C");
    s_->queue().run();
    s_->client(1).erase(0, 1);
    s_->queue().run();
  }
  std::unique_ptr<engine::StarSession> s_;
};

constexpr const char* kClientCkptHex =
    "d1010202624301020003010101000100010000000102616202010001010001000200"
    "02014301020101020001010001010161010102020101000101016101000000";

constexpr const char* kNotifierCkptHex =
    "d2020262430300020100030101010300010001000000010261620201020300010101"
    "00020002014301020103000201010100010101610300000201010101000000010261"
    "620102020101000101016103000102030001000301010100";

constexpr const char* kSessionCkptHex =
    "d3025cd2020262430300020100030101010300010001000000010261620201020300"
    "01010100020002014301020103000201010100010101610300000201010101000000"
    "01026162010202010100010101610300010203000100030101010041d10102026243"
    "01020003010101000100010000000102616202010001010001000200020143010201"
    "0102000101000101016101010202010100010101610100000037d102020262430201"
    "00030201010001000100000002014301010001000001000000010261620102000201"
    "00010100010101610001000000";

constexpr const char* kNotifierBundleHex =
    "d4025cd2020262430300020100030101010300010001000000010261620201020300"
    "01010100020002014301020103000201010100010101610300000201010101000000"
    "0102616201020201010001010161030001020300010003010101000201000101017a"
    "000101000000";

TEST_F(GoldenCheckpoints, ClientCheckpoint) {
  EXPECT_EQ(hex(engine::save_checkpoint(s_->client(1))), kClientCkptHex);
}

TEST_F(GoldenCheckpoints, NotifierCheckpoint) {
  EXPECT_EQ(hex(engine::save_checkpoint(s_->notifier())), kNotifierCkptHex);
}

TEST_F(GoldenCheckpoints, SessionCheckpoint) {
  EXPECT_EQ(hex(s_->checkpoint()), kSessionCkptHex);
}

TEST_F(GoldenCheckpoints, NotifierBundle) {
  engine::NotifierBundle bundle;
  bundle.num_sites = 2;
  bundle.notifier = s_->notifier().state();
  engine::ReliableLink::State ls;
  ls.next_seq = 2;
  ls.expected = 1;
  ls.unacked.emplace_back(1, net::Payload{'z'});
  bundle.links.push_back(ls);
  bundle.links.push_back(engine::ReliableLink::State{});
  EXPECT_EQ(hex(engine::encode_notifier_bundle(bundle)), kNotifierBundleHex);
}

// Decode → re-encode over the captured bytes: the decoders accept the
// goldens and reproduce them exactly.
TEST(GoldenBytes, ClientMsgRoundTripFromGolden) {
  const auto bytes = unhex("c10201050301000200026869");
  const auto msg = engine::decode_client_msg(bytes, StampMode::kCompressed);
  EXPECT_EQ(hex(engine::encode(msg, StampMode::kCompressed)), hex(bytes));
}

TEST(GoldenBytes, CenterMsgRoundTripFromGolden) {
  const auto bytes = unhex("c20102090402000103016101010001");
  const auto msg = engine::decode_center_msg(bytes, StampMode::kCompressed);
  EXPECT_EQ(hex(engine::encode(msg, StampMode::kCompressed)), hex(bytes));
}

TEST(GoldenBytes, MeshMsgRoundTripFromGolden) {
  const auto bytes = unhex("c30203040001020301000201027879");
  const auto msg =
      engine::decode_mesh_msg(bytes, engine::MeshStamp::kFullVector);
  EXPECT_EQ(hex(engine::encode(msg, engine::MeshStamp::kFullVector)),
            hex(bytes));
}

TEST(GoldenBytes, FrameRoundTripFromGolden) {
  const auto bytes = unhex("f00904686945785d6d");
  const auto f = engine::decode_frame(bytes);
  EXPECT_EQ(hex(engine::encode_frame(f)), hex(bytes));
}

TEST(GoldenBytes, LinkStateRoundTripFromGolden) {
  const auto bytes = unhex("020301010102706c01040171");
  util::ByteSource src(bytes);
  const auto st = engine::ReliableLink::decode_state(src);
  util::ByteSink sink;
  engine::ReliableLink::encode_state(st, sink);
  EXPECT_EQ(hex(sink.bytes()), hex(bytes));
}

TEST_F(GoldenCheckpoints, ClientCheckpointRoundTripFromGolden) {
  const auto bytes = unhex(kClientCkptHex);
  const auto st = engine::load_client_checkpoint(bytes);
  engine::ClientSite restored(st, engine::EngineConfig{}, [](net::Payload) {});
  EXPECT_EQ(hex(engine::save_checkpoint(restored)), kClientCkptHex);
}

TEST_F(GoldenCheckpoints, NotifierCheckpointRoundTripFromGolden) {
  const auto bytes = unhex(kNotifierCkptHex);
  const auto st = engine::load_notifier_checkpoint(bytes);
  EXPECT_EQ(hex(engine::encode_notifier_state(st)), kNotifierCkptHex);
}

TEST_F(GoldenCheckpoints, NotifierBundleRoundTripFromGolden) {
  const auto bytes = unhex(kNotifierBundleHex);
  const auto bundle = engine::decode_notifier_bundle(bytes);
  EXPECT_EQ(hex(engine::encode_notifier_bundle(bundle)), kNotifierBundleHex);
}

}  // namespace
