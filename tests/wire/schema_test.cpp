// Registry-level properties of the declarative schema and determinism
// of the artifacts ccvc_schema derives from it.  (Whether the committed
// files match is the analyzer's job — the `schema_check` ctest runs
// `ccvc_schema --check` against the source tree.)
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "wire/emit.hpp"
#include "wire/engine.hpp"
#include "wire/schema.hpp"

namespace {

using namespace ccvc;

TEST(SchemaRegistry, EveryDocumentedTagResolves) {
  // The fourteen §2.0 tags, exactly.
  const std::set<int> expected = {0xC1, 0xC2, 0xC3, 0xC4, 0xC5, 0xD1, 0xD2,
                                  0xD3, 0xD4, 0xE0, 0xE1, 0xF0, 0xF1, 0xF2};
  std::set<int> found;
  for (const wire::MessageDesc* m : wire::kRegistry) {
    if (m->tag != wire::kNoTag) found.insert(m->tag);
  }
  EXPECT_EQ(found, expected);
  for (int tag : expected) {
    const wire::MessageDesc* m = wire::find_by_tag(tag);
    ASSERT_NE(m, nullptr) << "tag " << tag;
    EXPECT_EQ(m->tag, tag);
  }
  EXPECT_EQ(wire::find_by_tag(0xAB), nullptr);
  EXPECT_EQ(wire::find_by_tag(wire::kNoTag), nullptr);
}

TEST(SchemaRegistry, NamesAreUniqueAcrossTheRegistry) {
  std::set<std::string> names;
  for (const wire::MessageDesc* m : wire::kRegistry) {
    EXPECT_TRUE(names.insert(m->name).second) << m->name;
  }
  EXPECT_EQ(names.size(), wire::kRegistrySize);
}

TEST(SchemaRegistry, ConstexprValidatorsHoldAtRuntimeToo) {
  // The same predicates the static_asserts evaluate, reported per
  // message for debuggability.
  for (const wire::MessageDesc* m : wire::kRegistry) {
    EXPECT_TRUE(wire::fields_valid(*m)) << m->name;
    EXPECT_TRUE(wire::acyclic(m, 0)) << m->name;
  }
  EXPECT_TRUE(wire::unique_tags(wire::kRegistry, wire::kRegistrySize));
  EXPECT_TRUE(wire::registry_closed(wire::kRegistry, wire::kRegistrySize));
}

TEST(SchemaRegistry, SubRecordsPrecedeTaggedMessages) {
  // The registry is canonical: every untagged record before any tagged
  // one, tagged ones in ascending tag order (schema.json inherits it).
  bool seen_tagged = false;
  int last_tag = -1;
  for (const wire::MessageDesc* m : wire::kRegistry) {
    if (m->tag == wire::kNoTag) {
      EXPECT_FALSE(seen_tagged) << m->name << " listed after tagged entries";
    } else {
      seen_tagged = true;
      EXPECT_GT(m->tag, last_tag) << m->name << " out of tag order";
      last_tag = m->tag;
    }
  }
}

TEST(SchemaEmit, JsonIsDeterministicAndCoversTheRegistry) {
  const std::string a = wire::schema_json();
  EXPECT_EQ(a, wire::schema_json());
  EXPECT_NE(a.find("\"format\": \"ccvc-wire-schema/1\""), std::string::npos);
  for (const wire::MessageDesc* m : wire::kRegistry) {
    EXPECT_NE(a.find("\"name\": \"" + std::string(m->name) + "\""),
              std::string::npos)
        << m->name;
  }
  EXPECT_EQ(a.back(), '\n');
}

TEST(SchemaEmit, DocTableIsDeterministicTagSortedAndComplete) {
  const std::string t = wire::doc_table();
  EXPECT_EQ(t, wire::doc_table());
  std::size_t pos = 0;
  for (int tag : {0xC1, 0xC2, 0xC3, 0xC4, 0xD1, 0xD2, 0xD3, 0xD4, 0xE0,
                  0xE1, 0xF0, 0xF1, 0xF2}) {
    char row[16];
    std::snprintf(row, sizeof row, "| `0x%02X` |", tag);
    const std::size_t at = t.find(row);
    ASSERT_NE(at, std::string::npos) << row;
    EXPECT_GT(at, pos) << "rows out of tag order at " << row;
    pos = at;
  }
}

TEST(SchemaEmit, DictsCoverEveryTagAndAreDeterministic) {
  const auto dicts = wire::fuzz_dicts();
  ASSERT_FALSE(dicts.empty());
  std::string all;
  for (const auto& d : dicts) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_FALSE(d.content.empty());
    all += d.content;
  }
  // Every wire tag appears as a dictionary token somewhere.
  for (const wire::MessageDesc* m : wire::kRegistry) {
    if (m->tag == wire::kNoTag) continue;
    char token[32];
    std::snprintf(token, sizeof token, "\\x%02x", m->tag);
    EXPECT_NE(all.find(token), std::string::npos) << m->name;
  }
  const auto again = wire::fuzz_dicts();
  ASSERT_EQ(again.size(), dicts.size());
  for (std::size_t i = 0; i < dicts.size(); ++i) {
    EXPECT_EQ(again[i].name, dicts[i].name);
    EXPECT_EQ(again[i].content, dicts[i].content);
  }
}

}  // namespace
