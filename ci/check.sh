#!/usr/bin/env bash
# Full verification pipeline — everything a PR must survive, in order:
#
#   1. -Werror configure + build (RelWithDebInfo preset)
#   2. full test suite under ASan+UBSan (Debug, CCVC_DCHECK live)
#   3. clang-tidy over src/            (skipped if the tool is absent)
#      + gcc -fanalyzer report         (informational, never fails)
#   4. cppcheck over src/              (skipped if the tool is absent)
#   5. tools/ccvc_lint.py protocol lint (per-rule selftests run under
#      the `lint` ctest label in step 2)
#   6. fuzzer smoke runs (seed corpus + 20k mutations, sanitized build)
#   7. chaos property suite under ASan+UBSan (fault injection + recovery)
#   8. bench pipeline smoke: bench_main → bench_report.py (schema
#      round-trip) + validation of the committed BENCH_results.json
#      and of the committed perf history BENCH_trajectory.json
#   9. bounded model checking: ccvc_mc exhaustive sweep + §6 ablation +
#      formula-mutation self-validation, plus the `model` ctest label
#  10. wire-schema gate: ccvc_schema --check (docs/schema.json,
#      PROTOCOL.md table, fuzz dictionaries, boundary round-trips)
#      plus the `schema` ctest label (golden bytes, bound rejects,
#      negative compiles, --check mutation test)
#  11. cross-TU dataflow gate: tools/ccvc_sa --check, all eight
#      checkers (wire-taint, exception-discipline, shared-state,
#      single-writer, atomics-order, hot-path-budget, blocking-graph,
#      liveness-discipline; generated docs CONCURRENCY.md / ATOMICS.md
#      / HOTPATH.md / BLOCKING.md byte-gated) + tools/sa_mutation.sh
#      corpus replay, plus the `sa` ctest label
#  12. failover under ThreadSanitizer: the hot-standby replication,
#      fail-stop, and promotion paths (engine failover tests, the
#      chaos failover/backpressure sweeps, and the scripted failover
#      scenario) rebuilt and re-run with -fsanitize=thread
#  13. threaded runtime under ThreadSanitizer: the pipelined notifier
#      (src/runtime/) — MPSC rings, batch assembly, drain protocol —
#      re-run with -fsanitize=thread: the sim-equivalence suite
#      (byte-identical snapshots vs the deterministic backend across
#      seeds and N) plus the closed-loop chaos sweep on real threads
#  14. concurrency-discipline & budget gates: the three PR 9 checkers
#      run as one comma-selected pass over a single parsed model
#      (single-writer,atomics-order,hot-path-budget), both generated
#      docs (docs/ATOMICS.md, docs/HOTPATH.md) verified byte-identical
#      against fresh --emit output, and the per-checker fixture
#      selftest (tests/sa/) replayed
#  15. blocking-graph & liveness gates: the static wait-for graph over
#      (thread closure × resource) edges proven acyclic, the
#      unbounded-inbox / egress-never-blocks rules checked as edge
#      absences, liveness discipline (predicate cv waits with reaching
#      notifies, flag-consulting spins, control-only joins), and
#      docs/BLOCKING.md verified byte-identical against fresh
#      --emit-blocking output
#
# Any finding exits non-zero.  Optional tools that are not installed are
# reported as SKIPPED, not failed, so the pipeline works on GCC-only
# images; install clang-tidy/cppcheck to widen coverage.
#
# Usage: ci/check.sh [-jN]

set -u -o pipefail

cd "$(dirname "$0")/.."
JOBS="${1:--j$(nproc)}"
FAILURES=0

step() {
  printf '\n=== %s ===\n' "$1"
}

fail() {
  printf 'FAILED: %s\n' "$1"
  FAILURES=$((FAILURES + 1))
}

step "1/15 configure + build, -Werror (relwithdebinfo)"
cmake --preset relwithdebinfo >/dev/null &&
  cmake --build --preset relwithdebinfo "$JOBS" ||
  fail "-Werror build"

step "2/15 full suite under ASan+UBSan (Debug; DCHECK contracts live)"
cmake --preset asan-ubsan >/dev/null &&
  cmake --build --preset asan-ubsan "$JOBS" &&
  ctest --preset asan-ubsan "$JOBS" -LE "fuzz_smoke|chaos|model" ||
  fail "asan-ubsan test suite"

step "3/15 clang-tidy (+ gcc -fanalyzer, informational)"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --build build-relwithdebinfo --target tidy || fail "clang-tidy"
else
  echo "SKIPPED: clang-tidy not installed"
fi
# gcc -fanalyzer is experimental for C++ (GCC 12): log its findings so
# they are visible in CI output, but never fail the pipeline on them.
# (grep reads to EOF rather than -q's early exit: under pipefail an
# early exit SIGPIPEs cmake and fails the pipeline on a *match*.)
if cmake --build build-relwithdebinfo --target help 2>/dev/null |
    grep '^\.\.\. fanalyzer' >/dev/null; then
  cmake --build build-relwithdebinfo --target fanalyzer 2>&1 | tail -n 60 ||
    echo "NOTE: gcc -fanalyzer reported findings (informational only)"
else
  echo "SKIPPED: gcc -fanalyzer target unavailable (needs GCC >= 12)"
fi

step "4/15 cppcheck"
if command -v cppcheck >/dev/null 2>&1; then
  cmake --build build-relwithdebinfo --target cppcheck || fail "cppcheck"
else
  echo "SKIPPED: cppcheck not installed"
fi

step "5/15 protocol lint (tools/ccvc_lint.py)"
python3 tools/ccvc_lint.py --root "$PWD" --compiler "${CXX:-c++}" ||
  fail "ccvc_lint"

step "6/15 fuzz smoke (sanitized, seed corpus + 20k runs each)"
ctest --preset asan-ubsan -L fuzz_smoke || fail "fuzz smoke"

step "7/15 chaos property suite (sanitized fault injection + recovery)"
ctest --preset asan-ubsan "$JOBS" -L chaos || fail "chaos suite"

step "8/15 bench pipeline smoke + BENCH_results.json schema check"
cmake --build build-relwithdebinfo "$JOBS" --target bench_main >/dev/null &&
  python3 tools/bench_report.py --build-dir build-relwithdebinfo \
    --mode smoke --output "$(mktemp -t bench_smoke.XXXXXX.json)" &&
  python3 tools/bench_report.py --check BENCH_results.json &&
  python3 tools/bench_report.py --check-trajectory BENCH_trajectory.json ||
  fail "bench pipeline"

step "9/15 bounded model checking (ccvc_mc + model-label tests)"
cmake --build build-relwithdebinfo "$JOBS" --target ccvc_mc model_tests \
    >/dev/null &&
  ./build-relwithdebinfo/src/analysis/ccvc_mc all &&
  ctest --test-dir build-relwithdebinfo "$JOBS" -L model ||
  fail "model checking"

step "10/15 wire-schema gate (ccvc_schema --check + schema-label tests)"
cmake --build build-relwithdebinfo "$JOBS" --target ccvc_schema wire_tests \
    >/dev/null &&
  ./build-relwithdebinfo/src/analysis/ccvc_schema --check --root "$PWD" &&
  ctest --test-dir build-relwithdebinfo "$JOBS" -L schema ||
  fail "wire-schema gate"

step "11/15 cross-TU dataflow gate (ccvc_sa --check + mutation corpus)"
python3 tools/ccvc_sa --check --root "$PWD" &&
  sh tools/sa_mutation.sh "$PWD" python3 &&
  ctest --test-dir build-relwithdebinfo "$JOBS" -L sa ||
  fail "ccvc_sa gate"

step "12/15 failover under TSan (hot-standby promotion + chaos sweep)"
cmake --preset tsan >/dev/null &&
  cmake --build --preset tsan "$JOBS" \
    --target engine_tests chaos_tests scenario_player >/dev/null &&
  ctest --test-dir build-tsan "$JOBS" \
    -R "Failover|HotStandby|scenario_chaos_failover" ||
  fail "tsan failover"

step "13/15 threaded runtime under TSan (equivalence + chaos sweep)"
cmake --build --preset tsan "$JOBS" --target runtime_tests >/dev/null &&
  ctest --test-dir build-tsan "$JOBS" -L runtime ||
  fail "tsan threaded runtime"

step "14/15 concurrency-discipline & budget gates (ownership, atomics, hot path)"
python3 tools/ccvc_sa --check --root "$PWD" \
    --checker single-writer,atomics-order,hot-path-budget &&
  python3 tools/ccvc_sa --emit-atomics --root "$PWD" |
    diff -u docs/ATOMICS.md - &&
  python3 tools/ccvc_sa --emit-hotpath --root "$PWD" |
    diff -u docs/HOTPATH.md - &&
  python3 tests/sa/sa_selftest.py --root "$PWD" ||
  fail "concurrency-discipline gates"

step "15/15 blocking-graph & liveness gates (wait-for graph, BLOCKING.md)"
python3 tools/ccvc_sa --check --root "$PWD" \
    --checker blocking-graph,liveness-discipline &&
  python3 tools/ccvc_sa --emit-blocking --root "$PWD" |
    diff -u docs/BLOCKING.md - ||
  fail "blocking-graph gates"

printf '\n'
if [ "$FAILURES" -ne 0 ]; then
  printf '%d step(s) FAILED\n' "$FAILURES"
  exit 1
fi
echo "all checks passed"
